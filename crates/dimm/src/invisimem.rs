//! Functional model of a DDR-adapted InvisiMem channel (Section VI of the
//! paper), for head-to-head *protocol* comparison with SecDDR.
//!
//! InvisiMem [Aga & Narayanasamy, ISCA'17] builds a mutually authenticated
//! channel: every transaction carries a per-transaction MAC
//! (`MACt = H(Kt, data, Ct)`) verified **on the receiving end** — the
//! memory verifies writes, the processor verifies reads. At-rest integrity
//! is delegated to the memory side: after verifying a write the module
//! stores its own MAC with the data; on reads it verifies the stored MAC
//! *before* transmitting.
//!
//! Structural consequences the paper argues (and this model makes
//! concrete):
//!
//! * memory-side verification needs the **entire 64-byte line** in one
//!   place — [`InvisiMemModule::accept_write`] takes the full line, which
//!   on a real DIMM forces a centralized data buffer (Section VI-B);
//! * the whole module must be **trusted**, because plaintext MACs and
//!   verification state live in module logic that on-DIMM attackers could
//!   reach ([`crate::TcbPlacement::TrustedDimm`]);
//! * in exchange, tampered writes are detected *immediately* (SecDDR
//!   defers detection to the next read) — see the tests.

use secddr_crypto::aes::Aes128;
use secddr_crypto::mac::Cmac;

use std::collections::HashMap;

/// Why an InvisiMem endpoint rejected a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The per-transaction MAC failed on the receiving end.
    BadTransactionMac,
    /// The module's stored (at-rest) MAC failed before a read response.
    BadStoredMac,
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::BadTransactionMac => write!(f, "channel MAC verification failed"),
            ChannelError::BadStoredMac => write!(f, "stored MAC verification failed"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A write packet on the InvisiMem channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePacket {
    /// Line address.
    pub addr: u64,
    /// Ciphertext line payload.
    pub data: [u8; 64],
    /// Per-transaction MAC over (data, addr, Ct).
    pub mac_t: u64,
}

/// A read-response packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadPacket {
    /// Ciphertext line payload.
    pub data: [u8; 64],
    /// Per-transaction MAC over (data, addr, Ct).
    pub mac_t: u64,
}

fn mac_t(cmac: &Cmac, data: &[u8; 64], addr: u64, ct: u64) -> u64 {
    let mut msg = [0u8; 80];
    msg[..64].copy_from_slice(data);
    msg[64..72].copy_from_slice(&addr.to_le_bytes());
    msg[72..80].copy_from_slice(&ct.to_le_bytes());
    let tag = cmac.tag(&msg);
    u64::from_le_bytes(tag[..8].try_into().expect("8 bytes"))
}

/// The processor end of the channel.
#[derive(Debug)]
pub struct InvisiMemProcessor {
    cmac: Cmac,
    ct: u64,
}

/// The (trusted) memory-module end of the channel: HMC-logic-layer-like
/// centralized security logic plus backing storage.
#[derive(Debug)]
pub struct InvisiMemModule {
    cmac: Cmac,
    /// Module-private key for at-rest MACs (never leaves the module).
    storage_cmac: Cmac,
    ct: u64,
    data: HashMap<u64, [u8; 64]>,
    macs: HashMap<u64, u64>,
}

/// Builds an attested processor/module pair sharing `Kt` and `Ct`.
pub fn attested_pair(seed: u64) -> (InvisiMemProcessor, InvisiMemModule) {
    let mut kt = [0u8; 16];
    kt[..8].copy_from_slice(&seed.to_le_bytes());
    kt[15] = 0x1E;
    let mut ks = kt;
    ks[14] = 0x57;
    (
        InvisiMemProcessor {
            cmac: Cmac::new(Aes128::new(&kt)),
            ct: seed,
        },
        InvisiMemModule {
            cmac: Cmac::new(Aes128::new(&kt)),
            storage_cmac: Cmac::new(Aes128::new(&ks)),
            ct: seed,
            data: HashMap::new(),
            macs: HashMap::new(),
        },
    )
}

impl InvisiMemProcessor {
    /// Builds a write packet, consuming one counter value.
    pub fn begin_write(&mut self, addr: u64, data: &[u8; 64]) -> WritePacket {
        let ct = self.ct;
        self.ct += 1;
        WritePacket {
            addr,
            data: *data,
            mac_t: mac_t(&self.cmac, data, addr, ct),
        }
    }

    /// Issues a read: consumes the counter value the response must be
    /// MACed under and returns it for bookkeeping.
    pub fn begin_read(&mut self) -> u64 {
        let ct = self.ct;
        self.ct += 1;
        ct
    }

    /// Verifies a read response against the counter value from
    /// [`Self::begin_read`].
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadTransactionMac`] when the packet fails
    /// verification (tampering or replay).
    pub fn finish_read(
        &mut self,
        addr: u64,
        ct: u64,
        packet: &ReadPacket,
    ) -> Result<[u8; 64], ChannelError> {
        if mac_t(&self.cmac, &packet.data, addr, ct) != packet.mac_t {
            return Err(ChannelError::BadTransactionMac);
        }
        Ok(packet.data)
    }
}

impl InvisiMemModule {
    /// Memory-side write path: verify the channel MAC, then store the data
    /// with a module-generated at-rest MAC. **Detection is immediate** —
    /// the key behavioural difference from SecDDR's deferred model.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadTransactionMac`] if the packet was tampered with
    /// in flight; the write is not performed.
    pub fn accept_write(&mut self, packet: &WritePacket) -> Result<(), ChannelError> {
        let ct = self.ct;
        self.ct += 1;
        if mac_t(&self.cmac, &packet.data, packet.addr, ct) != packet.mac_t {
            return Err(ChannelError::BadTransactionMac);
        }
        let stored_mac = mac_t(&self.storage_cmac, &packet.data, packet.addr, 0);
        self.data.insert(packet.addr, packet.data);
        self.macs.insert(packet.addr, stored_mac);
        Ok(())
    }

    /// Memory-side read path: verify the stored MAC, then emit a fresh
    /// channel packet.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadStoredMac`] if at-rest data no longer matches
    /// its stored MAC (e.g. a disturbance attack on the stacked DRAM).
    pub fn serve_read(&mut self, addr: u64) -> Result<ReadPacket, ChannelError> {
        let ct = self.ct;
        self.ct += 1;
        let data = self.data.get(&addr).copied().unwrap_or([0u8; 64]);
        let mac = self.macs.get(&addr).copied().unwrap_or(0);
        if mac_t(&self.storage_cmac, &data, addr, 0) != mac && self.data.contains_key(&addr) {
            return Err(ChannelError::BadStoredMac);
        }
        Ok(ReadPacket {
            data,
            mac_t: mac_t(&self.cmac, &data, addr, ct),
        })
    }

    /// Attacker with at-rest access flips bits in the stored data (e.g.
    /// Row-Hammer on the stack — which InvisiMem's threat model deems
    /// impractical for TSV-connected DRAM, but which matters for the
    /// DDR adaptation).
    pub fn disturb_stored(&mut self, addr: u64, byte: usize, mask: u8) {
        if let Some(line) = self.data.get_mut(&addr) {
            line[byte] ^= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_roundtrip() {
        let (mut cpu, mut module) = attested_pair(5);
        let pkt = cpu.begin_write(0x40, &[9; 64]);
        module.accept_write(&pkt).expect("honest write verifies");
        let ct = cpu.begin_read();
        let resp = module.serve_read(0x40).expect("stored MAC intact");
        assert_eq!(cpu.finish_read(0x40, ct, &resp).expect("verifies"), [9; 64]);
    }

    #[test]
    fn tampered_write_detected_immediately() {
        // The structural contrast with SecDDR: InvisiMem catches a write
        // corruption at write time; SecDDR defers to the next read.
        let (mut cpu, mut module) = attested_pair(6);
        let mut pkt = cpu.begin_write(0x40, &[9; 64]);
        pkt.data[3] ^= 1;
        assert_eq!(
            module.accept_write(&pkt).unwrap_err(),
            ChannelError::BadTransactionMac
        );
    }

    #[test]
    fn replayed_response_detected() {
        let (mut cpu, mut module) = attested_pair(7);
        let pkt = cpu.begin_write(0x40, &[1; 64]);
        module.accept_write(&pkt).expect("honest");
        let ct1 = cpu.begin_read();
        let resp1 = module.serve_read(0x40).expect("ok");
        assert!(cpu.finish_read(0x40, ct1, &resp1).is_ok());
        // Overwrite, then replay the old response.
        let pkt2 = cpu.begin_write(0x40, &[2; 64]);
        module.accept_write(&pkt2).expect("honest");
        let ct2 = cpu.begin_read();
        let _ = module.serve_read(0x40).expect("ok"); // genuine response discarded
        assert_eq!(
            cpu.finish_read(0x40, ct2, &resp1).unwrap_err(),
            ChannelError::BadTransactionMac,
            "stale packet MACed under an old counter must fail"
        );
    }

    #[test]
    fn at_rest_disturbance_detected_by_module() {
        let (mut cpu, mut module) = attested_pair(8);
        let pkt = cpu.begin_write(0x40, &[1; 64]);
        module.accept_write(&pkt).expect("honest");
        module.disturb_stored(0x40, 17, 0x40);
        assert_eq!(
            module.serve_read(0x40).unwrap_err(),
            ChannelError::BadStoredMac
        );
    }

    #[test]
    fn dropped_write_desynchronizes() {
        let (mut cpu, mut module) = attested_pair(9);
        let _dropped = cpu.begin_write(0x40, &[1; 64]); // never delivered
        let pkt = cpu.begin_write(0x80, &[2; 64]);
        // Module's counter is one behind: verification fails.
        assert_eq!(
            module.accept_write(&pkt).unwrap_err(),
            ChannelError::BadTransactionMac
        );
    }

    #[test]
    fn uninitialized_reads_are_benign_zeroes() {
        let (mut cpu, mut module) = attested_pair(10);
        let ct = cpu.begin_read();
        let resp = module.serve_read(0x9000).expect("no stored state");
        assert_eq!(
            cpu.finish_read(0x9000, ct, &resp).expect("fresh MACt"),
            [0u8; 64]
        );
    }
}
