//! The full memory module: multiple ranks, each with independent SecDDR
//! security state, plus the two TCB placements of the paper.

use secddr_crypto::aes::Aes128;

use crate::dimm::DimmRank;

/// Where the SecDDR security logic lives (Sections III-E and VI-C).
///
/// Both placements run the identical protocol; they differ in which
/// physical attacks the threat model admits:
///
/// * [`UntrustedDimm`] — logic on the DRAM die of the ECC chip(s). Only
///   the processor and the ECC chip are trusted; every on-DIMM
///   interconnect and buffer is attacker-accessible (the main design of
///   the paper, Figure 5).
/// * [`TrustedDimm`] — logic in the ECC chip's data buffer (DB), acting as
///   the DIMM's root of trust; the whole DIMM is in the TCB. This is the
///   iso-security baseline used for the InvisiMem comparison (Figure 11).
///
/// [`UntrustedDimm`]: TcbPlacement::UntrustedDimm
/// [`TrustedDimm`]: TcbPlacement::TrustedDimm
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TcbPlacement {
    /// Security logic on the ECC chip's DRAM die; DIMM untrusted.
    #[default]
    UntrustedDimm,
    /// Security logic in the ECC data buffer; entire DIMM trusted.
    TrustedDimm,
}

impl TcbPlacement {
    /// Can the attacker interpose on the DIMM's *internal* interconnects
    /// (between buffers and chips)? Only in the untrusted-DIMM model are
    /// such attacks in scope — and SecDDR still defeats them, because the
    /// E-MAC pads are removed only inside the ECC chip.
    pub fn on_dimm_attacks_in_scope(&self) -> bool {
        matches!(self, TcbPlacement::UntrustedDimm)
    }
}

/// A memory module with `N` ranks, each holding an independent secure
/// channel endpoint (Section III-E: "If the memory module has multiple
/// ranks, the ECC chip(s) in each rank are independent. The processor must
/// establish a separate secure E-MAC channel and use a different
/// transaction counter for each rank.").
#[derive(Debug)]
pub struct Dimm {
    ranks: Vec<DimmRank>,
    /// The TCB variant this module models.
    pub tcb: TcbPlacement,
}

impl Dimm {
    /// Builds a module with `ranks` independently-keyed ranks.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn new(ranks: usize, tcb: TcbPlacement, seed: u64) -> Self {
        assert!(ranks > 0, "a DIMM has at least one rank");
        let ranks = (0..ranks)
            .map(|r| {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&seed.to_le_bytes());
                key[8] = r as u8;
                key[15] = 0xDA;
                DimmRank::new(Aes128::new(&key), seed.wrapping_mul(2) + r as u64 * 1000)
            })
            .collect();
        Self { ranks, tcb }
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Access a rank.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rank(&self, index: usize) -> &DimmRank {
        &self.ranks[index]
    }

    /// Mutable access to a rank.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn rank_mut(&mut self, index: usize) -> &mut DimmRank {
        &mut self.ranks[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry;

    #[test]
    fn ranks_have_independent_counters() {
        let mut dimm = Dimm::new(2, TcbPlacement::UntrustedDimm, 5);
        let before_1 = dimm.rank(1).counter_state();
        let _ = dimm.rank_mut(0).serve_read(geometry::decode(0x40));
        assert_eq!(
            dimm.rank(1).counter_state(),
            before_1,
            "rank 1 unaffected by rank 0 traffic"
        );
        assert_ne!(dimm.rank(0).counter_state().0, before_1.0);
    }

    #[test]
    fn tcb_scope_flags() {
        assert!(TcbPlacement::UntrustedDimm.on_dimm_attacks_in_scope());
        assert!(!TcbPlacement::TrustedDimm.on_dimm_attacks_in_scope());
        assert_eq!(TcbPlacement::default(), TcbPlacement::UntrustedDimm);
    }

    #[test]
    fn both_placements_run_the_same_protocol() {
        // The placement changes the threat model, not the wire protocol:
        // a read served by either module variant is indistinguishable.
        let mut a = Dimm::new(1, TcbPlacement::UntrustedDimm, 9);
        let mut b = Dimm::new(1, TcbPlacement::TrustedDimm, 9);
        let ra = a.rank_mut(0).serve_read(geometry::decode(0x80));
        let rb = b.rank_mut(0).serve_read(geometry::decode(0x80));
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Dimm::new(0, TcbPlacement::UntrustedDimm, 1);
    }
}
