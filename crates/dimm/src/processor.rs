//! Processor-side SecDDR endpoint: the memory encryption engine extended
//! with E-MAC generation and verification (Section III-A).
//!
//! The processor is the *only* place integrity is verified — the DIMM
//! never checks MACs. On writes it encrypts the line (AES-XTS or
//! counter mode), MACs the ciphertext together with the line address,
//! XORs the MAC with the write pad, and binds the eWCRC; on reads it
//! removes the read pad and verifies.

use secddr_crypto::aes::Aes128;
use secddr_crypto::crc::Ewcrc;
use secddr_crypto::ctr::CtrStream;
use secddr_crypto::mac::Cmac;
use secddr_crypto::otp::TransactionCounter;
use secddr_crypto::xts::XtsAes128;

use crate::bus::{ReadResponse, WriteTransaction};
use crate::geometry;

use std::collections::HashMap;

/// Which confidentiality scheme encrypts line data (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncryptionMode {
    /// AES-XTS: no counters, spatial-only variation (TME/SEV style).
    Xts,
    /// Counter mode: per-line encryption counters, temporal + spatial
    /// variation (SGX style). Counters are held in an idealized on-chip
    /// table here; their performance cost is modelled in `secddr-core`.
    Ctr,
}

/// Why a read was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The recomputed MAC does not match the received (decrypted) MAC.
    /// Raised for bus replays, stale data, bit flips, counter divergence —
    /// the processor cannot distinguish the causes, only that tampering
    /// occurred (Section III-A).
    MacMismatch {
        /// The line address whose verification failed.
        line_addr: u64,
    },
}

impl core::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IntegrityError::MacMismatch { line_addr } => {
                write!(f, "integrity verification failed at {line_addr:#x}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// The processor's per-rank SecDDR security logic.
#[derive(Debug)]
pub struct SecDdrProcessor {
    mode: EncryptionMode,
    kt: Aes128,
    counter: TransactionCounter,
    mac: Cmac,
    xts: XtsAes128,
    ctr: CtrStream,
    /// Per-line encryption counters for [`EncryptionMode::Ctr`].
    enc_counters: HashMap<u64, u64>,
}

impl SecDdrProcessor {
    /// Creates the endpoint with the shared transaction key `kt`, the
    /// negotiated initial counter, and a seed for the processor-private
    /// keys (MAC and data-encryption keys never leave the chip).
    pub fn new(mode: EncryptionMode, kt: Aes128, initial_ct: u64, seed: u64) -> Self {
        let mk = |tag: u8| -> [u8; 16] {
            let mut k = [tag; 16];
            k[..8].copy_from_slice(&seed.to_le_bytes());
            k[15] = tag;
            k
        };
        Self {
            mode,
            kt,
            counter: TransactionCounter::new(initial_ct),
            mac: Cmac::new(Aes128::new(&mk(0xA1))),
            xts: XtsAes128::new(&mk(0xB2), &mk(0xC3)),
            ctr: CtrStream::new(Aes128::new(&mk(0xD4))),
            enc_counters: HashMap::new(),
        }
    }

    /// Current `(read, write)` transaction-counter state (diagnostics /
    /// substitution checks).
    pub fn counter_state(&self) -> (u64, u64) {
        self.counter.state()
    }

    /// Encrypts and MACs `data` for `line_addr`, producing the bus
    /// transaction. Consumes one (odd) write counter value.
    pub fn begin_write(&mut self, line_addr: u64, data: &[u8; 64]) -> WriteTransaction {
        let mut cipher = *data;
        match self.mode {
            EncryptionMode::Xts => self.xts.encrypt_units(line_addr, &mut cipher),
            EncryptionMode::Ctr => {
                let c = self.enc_counters.entry(line_addr).or_insert(0);
                *c += 1;
                let c = *c;
                self.ctr.xor_keystream(line_addr, c, &mut cipher);
            }
        }
        let mac = self.mac.line_mac(&cipher, line_addr);
        let addr = geometry::decode(line_addr);
        let pad = self.counter.write_pad(&self.kt, addr.as_u64());
        let emac = pad.apply(mac);
        // eWCRC binds the plaintext MAC (the ECC chip's burst payload) and
        // the full write address; it travels encrypted.
        let ewcrc = pad.apply_crc(Ewcrc::generate(&mac.to_le_bytes(), &addr));
        WriteTransaction {
            addr,
            data: cipher,
            emac,
            ewcrc,
        }
    }

    /// Verifies and decrypts a read response for `line_addr`. Consumes one
    /// (even) read counter value.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::MacMismatch`] when the MAC does not verify —
    /// i.e. whenever data, E-MAC, address, or counters were tampered with.
    pub fn finish_read(
        &mut self,
        line_addr: u64,
        resp: &ReadResponse,
    ) -> Result<[u8; 64], IntegrityError> {
        let pad = self.counter.read_pad(&self.kt);
        let mac = pad.apply(resp.emac);
        let expected = self.mac.line_mac(&resp.data, line_addr);
        if mac != expected {
            return Err(IntegrityError::MacMismatch { line_addr });
        }
        let mut plain = resp.data;
        match self.mode {
            EncryptionMode::Xts => self.xts.decrypt_units(line_addr, &mut plain),
            EncryptionMode::Ctr => {
                let c = *self.enc_counters.get(&line_addr).unwrap_or(&0);
                self.ctr.xor_keystream(line_addr, c, &mut plain);
            }
        }
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(mode: EncryptionMode) -> SecDdrProcessor {
        SecDdrProcessor::new(mode, Aes128::new(&[9; 16]), 0, 42)
    }

    #[test]
    fn write_advances_only_the_write_counter() {
        let mut p = proc(EncryptionMode::Xts);
        assert_eq!(p.counter_state(), (0, 1));
        let _ = p.begin_write(0x40, &[0; 64]);
        assert_eq!(p.counter_state(), (0, 3), "write consumed one odd slot");
    }

    #[test]
    fn ctr_mode_has_temporal_variation_xts_does_not() {
        let mut ctr = proc(EncryptionMode::Ctr);
        let a = ctr.begin_write(0x40, &[7; 64]).data;
        let b = ctr.begin_write(0x40, &[7; 64]).data;
        assert_ne!(a, b, "counter mode re-encrypts differently");

        let mut xts = proc(EncryptionMode::Xts);
        let a = xts.begin_write(0x40, &[7; 64]).data;
        let b = xts.begin_write(0x40, &[7; 64]).data;
        assert_eq!(a, b, "XTS lacks temporal variation (the paper's caveat)");
    }

    #[test]
    fn emac_differs_across_writes_of_same_line() {
        // Even with identical ciphertext (XTS), the E-MAC is temporally
        // unique because the pad consumes a fresh counter.
        let mut p = proc(EncryptionMode::Xts);
        let a = p.begin_write(0x40, &[7; 64]);
        let b = p.begin_write(0x40, &[7; 64]);
        assert_eq!(a.data, b.data);
        assert_ne!(a.emac, b.emac, "temporal uniqueness of E-MACs");
    }

    #[test]
    fn tampered_emac_fails_verification() {
        let mut p = proc(EncryptionMode::Xts);
        let tx = p.begin_write(0x40, &[1; 64]);
        // Simulate the honest DIMM round trip but flip an E-MAC bit: the
        // DIMM stores MAC after unpadding; here we mimic a same-counter
        // echo with corruption.
        let resp = ReadResponse {
            data: tx.data,
            emac: tx.emac ^ 1,
        };
        assert!(p.finish_read(0x40, &resp).is_err());
    }
}
