//! One-call experiment runner: benchmark × configuration → IPC.

use cpu_model::{CpuConfig, CpuSystem, SimResult};
use sim_kernel::Advance;
use workloads::Benchmark;

use crate::config::SecurityConfig;
use crate::engine::{EngineOptions, EngineStats, SecurityEngine};

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunParams {
    /// Instruction budget (the paper uses 200M-instruction SimPoints; the
    /// harness defaults scale this down while preserving the shape).
    pub instructions: u64,
    /// Trace generation seed (identical across configurations so every
    /// configuration sees the same input).
    pub seed: u64,
}

impl Default for RunParams {
    fn default() -> Self {
        Self {
            instructions: 500_000,
            seed: 0xD5,
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark label.
    pub benchmark: &'static str,
    /// Configuration label.
    pub config: String,
    /// Core-side results (IPC, cache stats).
    pub sim: SimResult,
    /// Security-engine traffic statistics.
    pub engine: EngineStats,
    /// DRAM channel statistics.
    pub dram: dram_sim::DramStats,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.sim.ipc()
    }

    /// Metadata-cache misses per kilo-instruction (Figure 7).
    pub fn metadata_mpki(&self) -> f64 {
        if self.sim.instructions == 0 {
            0.0
        } else {
            self.engine.metadata_misses() as f64 * 1000.0 / self.sim.instructions as f64
        }
    }

    /// Metadata-cache miss rate (Figure 7).
    pub fn metadata_miss_rate(&self) -> f64 {
        self.engine.metadata_cache.miss_rate()
    }

    /// LLC misses per kilo-instruction (memory-intensity classifier;
    /// the paper uses MPKI >= 10).
    pub fn llc_mpki(&self) -> f64 {
        self.sim.llc_mpki()
    }
}

/// Runs `bench` under `config` and returns the full result set.
pub fn run_benchmark(bench: &Benchmark, config: &SecurityConfig, params: &RunParams) -> RunResult {
    run_benchmark_with_options(bench, config, params, EngineOptions::default())
}

/// As [`run_benchmark`] with an explicit clock-advance policy.
///
/// [`Advance::PerCycle`] runs the lock-step reference semantics; the
/// equivalence tests compare it against the default event-driven fast
/// path, which must produce identical results.
pub fn run_benchmark_with_advance(
    bench: &Benchmark,
    config: &SecurityConfig,
    params: &RunParams,
    advance: Advance,
) -> RunResult {
    let options = EngineOptions {
        advance,
        ..EngineOptions::default()
    };
    run_benchmark_with_options(bench, config, params, options)
}

/// As [`run_benchmark`] with explicit engine ablation knobs.
pub fn run_benchmark_with_options(
    bench: &Benchmark,
    config: &SecurityConfig,
    params: &RunParams,
    options: EngineOptions,
) -> RunResult {
    let trace = bench.generate(params.instructions, params.seed);
    run_trace_with_options(bench, &trace, config, options)
}

/// Runs an already-generated trace under `config`.
///
/// Sweeps that evaluate one benchmark under several configurations
/// generate the trace once and reuse it here — trace generation (graph
/// kernels, calibrated generators) is pure overhead to repeat per
/// configuration.
pub fn run_trace_with_options(
    bench: &Benchmark,
    trace: &[cpu_model::TraceOp],
    config: &SecurityConfig,
    options: EngineOptions,
) -> RunResult {
    let cpu_cfg = CpuConfig {
        advance: options.advance,
        batch_submit: options.batched_ingestion,
        ..CpuConfig::default()
    };
    let engine = SecurityEngine::with_options(*config, cpu_cfg.clock_mhz, options);
    let mut system = CpuSystem::new(cpu_cfg, engine);
    let sim = system.run(trace.iter().copied());
    let engine_stats = system.backend().stats();
    let dram = system.backend().dram_stats().clone();
    RunResult {
        benchmark: bench.name(),
        config: config.label(),
        sim,
        engine: engine_stats,
        dram,
    }
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(name: &str, cfg: SecurityConfig) -> RunResult {
        let params = RunParams {
            instructions: 60_000,
            seed: 7,
        };
        run_benchmark(&Benchmark::by_name(name).unwrap(), &cfg, &params)
    }

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn run_produces_sane_ipc() {
        let r = quick("povray", SecurityConfig::tdx_baseline());
        assert!(r.ipc() > 0.5, "compute-bound benchmark: {}", r.ipc());
        assert!(r.sim.instructions >= 55_000);
    }

    #[test]
    fn memory_intensive_benchmark_is_slower_under_tree() {
        let tree = quick("omnetpp", SecurityConfig::tree_64ary());
        let secddr = quick("omnetpp", SecurityConfig::secddr_ctr());
        assert!(
            secddr.ipc() > tree.ipc(),
            "secddr {} must beat tree {}",
            secddr.ipc(),
            tree.ipc()
        );
    }

    #[test]
    fn encrypt_only_is_an_upper_bound_for_secddr() {
        let enc = quick("omnetpp", SecurityConfig::encrypt_only_xts());
        let secddr = quick("omnetpp", SecurityConfig::secddr_xts());
        // Within a small tolerance (SecDDR pays only the longer bursts).
        assert!(
            secddr.ipc() <= enc.ipc() * 1.02,
            "{} vs {}",
            secddr.ipc(),
            enc.ipc()
        );
    }

    #[test]
    fn metadata_stats_flow_through() {
        let r = quick("omnetpp", SecurityConfig::tree_64ary());
        assert!(r.engine.leaf_fetches > 0);
        assert!(r.metadata_mpki() > 0.0);
        assert!(r.metadata_miss_rate() > 0.0);
        let tdx = quick("omnetpp", SecurityConfig::tdx_baseline());
        assert_eq!(tdx.engine.leaf_fetches, 0);
    }

    #[test]
    fn same_trace_across_configs() {
        let a = quick("gcc", SecurityConfig::tdx_baseline());
        let b = quick("gcc", SecurityConfig::tree_64ary());
        assert_eq!(a.sim.instructions, b.sim.instructions);
    }
}
