//! Closed-form security analyses from the paper.
//!
//! * [`EwcrcAttackModel`] — Section III-B: how long a brute-force attack on
//!   the encrypted eWCRC takes, given that CCCA transmission errors are
//!   rare and an elevated error rate exposes the attack.
//! * [`counter_overflow_years`] — Section III-C: the 64-bit transaction
//!   counter cannot overflow within a system lifetime.
//! * [`dimm_substitution_success_probability`] — the 2^-64 chance a stale
//!   counter state matches.

/// Seconds per (Julian) year.
const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Parameters of the eWCRC brute-force analysis (Section III-B defaults).
#[derive(Debug, Clone, Copy)]
pub struct EwcrcAttackModel {
    /// Bit error rate on the CCCA signals (JEDEC worst case: 1e-16).
    pub ber: f64,
    /// Effective CCCA toggle rate in transfers/second. The CCCA bus runs
    /// at half the DDR data rate (1600 MT/s for DDR4-3200); the paper's
    /// 11.13-day figure further implies a 25% command-bus activity factor,
    /// i.e. an effective 400 MT/s, which we adopt to reproduce its
    /// arithmetic.
    pub ccca_rate: f64,
    /// Number of CCCA + data signals observed per device (x8: 26).
    pub signal_count: f64,
    /// eWCRC width in bits.
    pub crc_bits: u32,
}

impl Default for EwcrcAttackModel {
    fn default() -> Self {
        Self {
            ber: 1e-16,
            ccca_rate: 400e6,
            signal_count: 26.0,
            crc_bits: 16,
        }
    }
}

impl EwcrcAttackModel {
    /// The JEDEC-worst-case model the paper uses for its headline numbers.
    pub fn jedec_worst_case() -> Self {
        Self::default()
    }

    /// The realistic-BER variant (1e-21, Section III-B cites 1e-22..1e-21).
    pub fn realistic() -> Self {
        Self {
            ber: 1e-21,
            ..Self::default()
        }
    }

    /// The low end of the realistic BER range (1e-22), which reproduces
    /// the paper's parallel-attack figure of >86,000 years.
    pub fn realistic_low() -> Self {
        Self {
            ber: 1e-22,
            ..Self::default()
        }
    }

    /// Mean time between *naturally occurring* CCCA errors on one channel,
    /// in days. The paper: 11.13 days at BER 1e-16.
    pub fn days_between_natural_errors(&self) -> f64 {
        let errors_per_second = self.ber * self.ccca_rate * self.signal_count;
        1.0 / errors_per_second / 86_400.0
    }

    /// Expected number of attempts for a brute-force success probability
    /// of `p` against the `crc_bits`-bit eWCRC.
    pub fn attempts_for_success_probability(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "probability in [0,1)");
        // 1 - (1 - 2^-n)^k >= p  =>  k >= ln(1-p) / ln(1 - 2^-n)
        let per_try = 2f64.powi(-(self.crc_bits as i32));
        (1.0 - p).ln() / (1.0 - per_try).ln()
    }

    /// Years to exhaust `attempts` when each attempt must masquerade as a
    /// natural CCCA error (attempting faster reveals the attack). The
    /// paper: ~1,385 years for 50% success at BER 1e-16 on one channel.
    pub fn attack_years(&self, success_probability: f64, channels: f64) -> f64 {
        let attempts = self.attempts_for_success_probability(success_probability);
        let days = self.days_between_natural_errors() * attempts / channels;
        days * 86_400.0 / SECONDS_PER_YEAR
    }
}

/// Years until a 64-bit transaction counter overflows at the given
/// transaction rate (Section III-C: >500 years at 1 GT/s per rank).
pub fn counter_overflow_years(transactions_per_second: f64) -> f64 {
    (u64::MAX as f64) / transactions_per_second / SECONDS_PER_YEAR
}

/// Probability that a stale DIMM's 64-bit counter matches the live
/// processor counter after substitution (Section III-C: 2^-64).
pub fn dimm_substitution_success_probability() -> f64 {
    2f64.powi(-64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_error_interval_matches_paper() {
        let m = EwcrcAttackModel::jedec_worst_case();
        let days = m.days_between_natural_errors();
        assert!((days - 11.13).abs() < 0.1, "paper: 11.13 days, got {days}");
    }

    #[test]
    fn fifty_percent_attempt_count_matches_paper() {
        let m = EwcrcAttackModel::jedec_worst_case();
        let attempts = m.attempts_for_success_probability(0.5);
        // Paper: "at least 4.5e4 attempts".
        assert!((attempts - 4.5e4).abs() / 4.5e4 < 0.02, "{attempts}");
    }

    #[test]
    fn single_channel_attack_duration_matches_paper() {
        let m = EwcrcAttackModel::jedec_worst_case();
        let years = m.attack_years(0.5, 1.0);
        // Paper: 1,385 years.
        assert!((years - 1385.0).abs() / 1385.0 < 0.02, "{years}");
    }

    #[test]
    fn realistic_ber_is_hundred_thousand_times_longer() {
        let worst = EwcrcAttackModel::jedec_worst_case().attack_years(0.5, 1.0);
        let real = EwcrcAttackModel::realistic().attack_years(0.5, 1.0);
        // 1e-16 -> 1e-21 is 1e5x; paper: ~138 million years.
        assert!((real / worst - 1e5).abs() / 1e5 < 0.01);
        assert!((real - 1.38e8).abs() / 1.38e8 < 0.02, "{real}");
    }

    #[test]
    fn parallel_attack_still_takes_millennia() {
        // Paper: 1,000 nodes x 16 channels still > 86,000 years (the
        // figure matches the 1e-22 end of the cited BER range).
        let m = EwcrcAttackModel::realistic_low();
        let years = m.attack_years(0.5, 16_000.0);
        assert!(years > 86_000.0, "{years}");
        assert!((years - 8.66e4).abs() / 8.66e4 < 0.05, "{years}");
    }

    #[test]
    fn counter_overflow_exceeds_system_lifetime() {
        // Paper: >500 years at one transaction per nanosecond per rank.
        let years = counter_overflow_years(1e9);
        assert!(years > 500.0, "{years}");
        assert!((years - 584.0).abs() < 2.0, "{years}");
    }

    #[test]
    fn substitution_probability_is_negligible() {
        let p = dimm_substitution_success_probability();
        assert!(p < 1e-19);
    }
}
