//! The evaluated system configurations (Section IV-B of the paper).

use dram_sim::DramConfig;

/// Memory encryption mode (Section IV-B discusses the tradeoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncMode {
    /// SGX-style counter-mode: per-line counters fetched through the
    /// metadata cache; decryption pad precomputable on a counter hit.
    Ctr,
    /// TME/SEV-style AES-XTS: no counters, but the AES latency sits on
    /// every access.
    Xts,
}

/// The replay-attack-protection mechanism (or lack of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Intel-TDX-like: encryption + MAC in the ECC chips, **no** RAP.
    /// This is the normalization baseline of every figure.
    Tdx,
    /// Counter integrity tree of the given arity over the encryption
    /// counters (64 = paper baseline, 128 = Morphable-counters-like).
    /// Requires [`EncMode::Ctr`].
    CounterTree {
        /// Tree arity (children per node).
        arity: u32,
    },
    /// Hash (Merkle) tree of the given arity over MAC lines; the only tree
    /// compatible with [`EncMode::Xts`]. MACs move from the ECC chips into
    /// data memory, so every access also fetches a MAC line.
    HashTree {
        /// Tree arity.
        arity: u32,
    },
    /// SecDDR: E-MAC-protected bus, encrypted eWCRC (longer write bursts),
    /// no tree.
    SecDdr,
    /// Encryption only — integrity *assumed*, the upper bound.
    EncryptOnly,
    /// DDR-adapted InvisiMem: mutually authenticated channel with
    /// memory-side MAC verification (2x MAC latency on the read path).
    InvisiMem {
        /// `false` = "unrealistic" @3200 MT/s; `true` = "realistic"
        /// @2400 MT/s (centralized-buffer derating, Section VI-D).
        realistic: bool,
    },
}

/// A complete security configuration under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecurityConfig {
    /// RAP mechanism.
    pub mechanism: Mechanism,
    /// Encryption mode.
    pub enc: EncMode,
    /// Encryption counters packed per 64-byte line (Figure 8's packing
    /// sweep: 8 / 64 / 128). Ignored by XTS configurations.
    pub ctr_packing: u32,
}

/// Crypto-unit latency in processor cycles (Table I: "40 processor-cycles
/// encryption and MAC").
pub const CRYPTO_LATENCY: u64 = 40;

impl SecurityConfig {
    /// The Intel-TDX-like normalization baseline: AES-XTS + MAC in ECC,
    /// no replay protection.
    pub fn tdx_baseline() -> Self {
        Self {
            mechanism: Mechanism::Tdx,
            enc: EncMode::Xts,
            ctr_packing: 64,
        }
    }

    /// Section IV-B config 1: 64-ary counter tree, counter-mode encryption.
    pub fn tree_64ary() -> Self {
        Self {
            mechanism: Mechanism::CounterTree { arity: 64 },
            enc: EncMode::Ctr,
            ctr_packing: 64,
        }
    }

    /// 128-ary counter tree (MorphTree-like, Figure 8).
    pub fn tree_128ary() -> Self {
        Self {
            mechanism: Mechanism::CounterTree { arity: 128 },
            enc: EncMode::Ctr,
            ctr_packing: 128,
        }
    }

    /// 8-ary hash/Merkle tree over MACs (Figure 8; XTS-compatible).
    pub fn tree_8ary_hash() -> Self {
        Self {
            mechanism: Mechanism::HashTree { arity: 8 },
            enc: EncMode::Xts,
            ctr_packing: 64,
        }
    }

    /// Section IV-B config 2: SecDDR with counter-mode encryption.
    pub fn secddr_ctr() -> Self {
        Self {
            mechanism: Mechanism::SecDdr,
            enc: EncMode::Ctr,
            ctr_packing: 64,
        }
    }

    /// Section IV-B config 4: SecDDR with AES-XTS.
    pub fn secddr_xts() -> Self {
        Self {
            mechanism: Mechanism::SecDdr,
            enc: EncMode::Xts,
            ctr_packing: 64,
        }
    }

    /// Section IV-B config 3: encrypt-only, counter mode.
    pub fn encrypt_only_ctr() -> Self {
        Self {
            mechanism: Mechanism::EncryptOnly,
            enc: EncMode::Ctr,
            ctr_packing: 64,
        }
    }

    /// Section IV-B config 5: encrypt-only, AES-XTS.
    pub fn encrypt_only_xts() -> Self {
        Self {
            mechanism: Mechanism::EncryptOnly,
            enc: EncMode::Xts,
            ctr_packing: 64,
        }
    }

    /// Returns a copy with a different counter packing (Figure 8).
    pub fn with_packing(mut self, counters_per_line: u32) -> Self {
        self.ctr_packing = counters_per_line;
        self
    }

    /// InvisiMem at full 3200 MT/s ("unrealistic", Section VI-D).
    pub fn invisimem_unrealistic(enc: EncMode) -> Self {
        Self {
            mechanism: Mechanism::InvisiMem { realistic: false },
            enc,
            ctr_packing: 64,
        }
    }

    /// InvisiMem derated to 2400 MT/s ("realistic").
    pub fn invisimem_realistic(enc: EncMode) -> Self {
        Self {
            mechanism: Mechanism::InvisiMem { realistic: true },
            enc,
            ctr_packing: 64,
        }
    }

    /// Short display label matching the paper's legends.
    pub fn label(&self) -> String {
        match (self.mechanism, self.enc) {
            (Mechanism::Tdx, _) => "TDX baseline".into(),
            (Mechanism::CounterTree { arity }, _) => format!("Integrity Tree, {arity}ary"),
            (Mechanism::HashTree { arity }, _) => format!("Hash Tree, {arity}ary"),
            (Mechanism::SecDdr, EncMode::Ctr) => "SecDDR+CTR".into(),
            (Mechanism::SecDdr, EncMode::Xts) => "SecDDR+XTS".into(),
            (Mechanism::EncryptOnly, EncMode::Ctr) => "Encrypt-only, CTR".into(),
            (Mechanism::EncryptOnly, EncMode::Xts) => "Encrypt-only, XTS".into(),
            (Mechanism::InvisiMem { realistic: false }, _) => {
                "InvisiMem - unrealistic @ 3200".into()
            }
            (Mechanism::InvisiMem { realistic: true }, _) => "InvisiMem - realistic @ 2400".into(),
        }
    }

    /// Validates mechanism/encryption compatibility (the paper's central
    /// compatibility argument: counter trees cannot run with AES-XTS).
    ///
    /// # Errors
    ///
    /// Returns a description of the incompatibility.
    pub fn validate(&self) -> Result<(), String> {
        match (self.mechanism, self.enc) {
            (Mechanism::CounterTree { .. }, EncMode::Xts) => Err(
                "counter trees protect encryption counters; AES-XTS has none \
                 (use a hash tree, Section V-A)"
                    .into(),
            ),
            (Mechanism::CounterTree { arity } | Mechanism::HashTree { arity }, _) if arity < 2 => {
                Err("tree arity must be at least 2".into())
            }
            _ if !self.ctr_packing.is_power_of_two() => {
                Err("counter packing must be a power of two".into())
            }
            _ => Ok(()),
        }
    }

    /// The DDR4 channel configuration this mechanism runs on: SecDDR takes
    /// the BL10 eWCRC bursts; realistic InvisiMem takes the derated
    /// channel; everything else uses stock DDR4-3200.
    pub fn dram_config(&self) -> DramConfig {
        match self.mechanism {
            Mechanism::SecDdr => {
                let mut cfg = DramConfig::ddr4_3200_ewcrc();
                // OTPw generation starts only when the write command
                // reaches the ECC chip and outlasts tWCL (Section III-B).
                cfg.write_extra_cycles = 2;
                cfg
            }
            Mechanism::InvisiMem { realistic: true } => DramConfig::ddr4_2400_derated(),
            _ => DramConfig::ddr4_3200(),
        }
    }

    /// Does this configuration fetch encryption counters?
    pub fn uses_counters(&self) -> bool {
        self.enc == EncMode::Ctr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for c in [
            SecurityConfig::tdx_baseline(),
            SecurityConfig::tree_64ary(),
            SecurityConfig::tree_128ary(),
            SecurityConfig::tree_8ary_hash(),
            SecurityConfig::secddr_ctr(),
            SecurityConfig::secddr_xts(),
            SecurityConfig::encrypt_only_ctr(),
            SecurityConfig::encrypt_only_xts(),
            SecurityConfig::invisimem_unrealistic(EncMode::Xts),
            SecurityConfig::invisimem_realistic(EncMode::Ctr),
        ] {
            assert!(c.validate().is_ok(), "{c:?}");
        }
    }

    #[test]
    fn counter_tree_with_xts_is_rejected() {
        let c = SecurityConfig {
            mechanism: Mechanism::CounterTree { arity: 64 },
            enc: EncMode::Xts,
            ctr_packing: 64,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn secddr_gets_extended_write_bursts() {
        let cfg = SecurityConfig::secddr_xts().dram_config();
        assert_eq!(cfg.write_burst_cycles, 5);
        let base = SecurityConfig::tdx_baseline().dram_config();
        assert_eq!(base.write_burst_cycles, 4);
    }

    #[test]
    fn realistic_invisimem_is_derated() {
        assert_eq!(
            SecurityConfig::invisimem_realistic(EncMode::Xts)
                .dram_config()
                .freq_mhz,
            1200
        );
        assert_eq!(
            SecurityConfig::invisimem_unrealistic(EncMode::Xts)
                .dram_config()
                .freq_mhz,
            1600
        );
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(
            SecurityConfig::tree_64ary().label(),
            "Integrity Tree, 64ary"
        );
        assert_eq!(SecurityConfig::secddr_ctr().label(), "SecDDR+CTR");
        assert_eq!(
            SecurityConfig::invisimem_realistic(EncMode::Xts).label(),
            "InvisiMem - realistic @ 2400"
        );
    }

    #[test]
    fn uses_counters_tracks_enc_mode() {
        assert!(SecurityConfig::secddr_ctr().uses_counters());
        assert!(!SecurityConfig::secddr_xts().uses_counters());
    }
}
