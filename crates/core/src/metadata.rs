//! Physical layout of security metadata in the protected address space.
//!
//! The simulated channel holds 16 GiB. Workload data lives below
//! [`DATA_SPAN`]; encryption counters, MAC lines, and integrity-tree levels
//! are placed in reserved regions above it, so metadata fetches contend for
//! the same banks and bus as data — the contention that makes integrity
//! trees expensive.

/// Top of the workload data region (10 GiB).
pub const DATA_SPAN: u64 = 0x2_8000_0000;
/// Base of the encryption-counter region.
pub const CTR_BASE: u64 = 0x3_0000_0000;
/// Base of the MAC-line region (hash-tree configurations only).
pub const MAC_BASE: u64 = 0x3_2000_0000;
/// Base of the integrity-tree node region.
pub const TREE_BASE: u64 = 0x3_8000_0000;
/// Line size (bytes).
pub const LINE: u64 = 64;

/// Layout calculator for one configuration's metadata.
#[derive(Debug, Clone)]
pub struct MetadataLayout {
    /// Counters (or MACs for a hash tree) covered by one 64-byte line.
    pub entries_per_line: u64,
    /// Tree arity.
    pub arity: u64,
    /// Number of leaf lines the tree covers.
    pub leaves: u64,
    /// Per-level (base_offset_in_lines, node_count), bottom-up, excluding
    /// the on-chip root.
    levels: Vec<(u64, u64)>,
    /// Base address of the leaf region (CTR_BASE or MAC_BASE).
    leaf_base: u64,
}

impl MetadataLayout {
    /// Layout for a counter tree: counter lines pack `counters_per_line`
    /// counters (64 in the baseline; 8/128 in Figure 8's packing sweep),
    /// and a tree of `arity` is built over them. Pass `arity = 0` for
    /// tree-less counter configurations (SecDDR+CTR, encrypt-only CTR).
    pub fn counter_tree(counters_per_line: u64, arity: u64) -> Self {
        let data_lines = DATA_SPAN / LINE;
        let leaves = data_lines.div_ceil(counters_per_line);
        Self::build(CTR_BASE, leaves, counters_per_line, arity)
    }

    /// Layout for a hash tree over MAC lines: 8 MACs of 8 bytes per line,
    /// tree of `arity` over them (the XTS-compatible 8-ary design of
    /// Figure 8).
    pub fn hash_tree(arity: u64) -> Self {
        let data_lines = DATA_SPAN / LINE;
        let macs_per_line = 8;
        let leaves = data_lines.div_ceil(macs_per_line);
        Self::build(MAC_BASE, leaves, macs_per_line, arity)
    }

    fn build(leaf_base: u64, leaves: u64, entries_per_line: u64, arity: u64) -> Self {
        let mut levels = Vec::new();
        if arity >= 2 {
            let mut offset = 0u64;
            let mut count = leaves;
            while count > 1 {
                count = count.div_ceil(arity);
                if count <= 1 {
                    break; // the root lives on-chip
                }
                levels.push((offset, count));
                offset += count;
            }
        }
        Self {
            entries_per_line,
            arity: arity.max(1),
            leaves,
            levels,
            leaf_base,
        }
    }

    /// Number of off-chip tree levels (the root is on-chip).
    pub fn tree_levels(&self) -> usize {
        self.levels.len()
    }

    /// Address of the leaf metadata line (counter line / MAC line)
    /// covering `data_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `data_addr` is outside the data region.
    pub fn leaf_line_of(&self, data_addr: u64) -> u64 {
        assert!(
            data_addr < DATA_SPAN,
            "address {data_addr:#x} beyond protected span"
        );
        let leaf_index = (data_addr / LINE) / self.entries_per_line;
        self.leaf_base + leaf_index * LINE
    }

    /// The tree-node addresses guarding the given leaf line, bottom-up
    /// (empty for tree-less layouts).
    pub fn tree_path_of(&self, leaf_line_addr: u64) -> Vec<u64> {
        self.tree_path_iter(leaf_line_addr).collect()
    }

    /// As [`Self::tree_path_of`] without allocating — the per-access hot
    /// path of the engine walks this lazily and stops at the first cached
    /// ancestor.
    pub fn tree_path_iter(&self, leaf_line_addr: u64) -> impl Iterator<Item = u64> + '_ {
        let mut index = (leaf_line_addr - self.leaf_base) / LINE;
        self.levels.iter().map(move |(offset, count)| {
            index /= self.arity;
            debug_assert!(index < *count);
            TREE_BASE + (offset + index) * LINE
        })
    }

    /// The parent node of a metadata line (leaf or interior), if any is
    /// stored off-chip. Used to propagate dirtiness on evictions.
    pub fn parent_of(&self, line_addr: u64) -> Option<u64> {
        if line_addr >= self.leaf_base && line_addr < self.leaf_base + self.leaves * LINE {
            return self.tree_path_iter(line_addr).next();
        }
        if line_addr >= TREE_BASE {
            let flat = (line_addr - TREE_BASE) / LINE;
            // Find which level this node sits in.
            for (li, (offset, count)) in self.levels.iter().enumerate() {
                if flat >= *offset && flat < offset + count {
                    let index_in_level = flat - offset;
                    let parent_index = index_in_level / self.arity;
                    return self
                        .levels
                        .get(li + 1)
                        .map(|(po, _)| TREE_BASE + (po + parent_index) * LINE);
                }
            }
        }
        None
    }

    /// Total metadata footprint in bytes (leaves + tree nodes).
    pub fn footprint_bytes(&self) -> u64 {
        let tree_lines: u64 = self.levels.iter().map(|(_, c)| c).sum();
        (self.leaves + tree_lines) * LINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_64ary_has_three_offchip_levels() {
        // 10 GiB data -> 167.8M lines -> 2.62M counter lines; 64-ary:
        // 41k -> 641 -> 11 -> root. Three off-chip levels.
        let l = MetadataLayout::counter_tree(64, 64);
        assert_eq!(l.tree_levels(), 3);
    }

    #[test]
    fn eight_ary_hash_tree_is_much_deeper() {
        let l8 = MetadataLayout::hash_tree(8);
        let l64 = MetadataLayout::counter_tree(64, 64);
        assert!(
            l8.tree_levels() >= l64.tree_levels() + 4,
            "8-ary: {} levels, 64-ary: {}",
            l8.tree_levels(),
            l64.tree_levels()
        );
    }

    #[test]
    fn treeless_layout_has_no_path() {
        let l = MetadataLayout::counter_tree(64, 0);
        assert_eq!(l.tree_levels(), 0);
        assert!(l.tree_path_of(l.leaf_line_of(0x1000)).is_empty());
    }

    #[test]
    fn leaf_lines_pack_correctly() {
        let l = MetadataLayout::counter_tree(64, 64);
        // 64 counters per line: data lines 0..63 share a counter line.
        assert_eq!(l.leaf_line_of(0), l.leaf_line_of(63 * 64));
        assert_ne!(l.leaf_line_of(0), l.leaf_line_of(64 * 64));
    }

    #[test]
    fn tree_path_is_monotonic_and_in_tree_region() {
        let l = MetadataLayout::counter_tree(64, 64);
        let path = l.tree_path_of(l.leaf_line_of(0x1234_5000));
        assert_eq!(path.len(), l.tree_levels());
        for n in &path {
            assert!(*n >= TREE_BASE);
        }
        // Distinct addresses per level.
        let set: std::collections::HashSet<u64> = path.iter().copied().collect();
        assert_eq!(set.len(), path.len());
    }

    #[test]
    fn siblings_share_parents() {
        let l = MetadataLayout::counter_tree(64, 64);
        // Two data lines whose counter lines are adjacent share the same
        // level-1 node (both counter-line indices / 64 coincide).
        let a = l.leaf_line_of(0);
        let b = l.leaf_line_of(64 * 64); // next counter line
        assert_eq!(l.tree_path_of(a)[0], l.tree_path_of(b)[0]);
    }

    #[test]
    fn parent_of_walks_up() {
        let l = MetadataLayout::counter_tree(64, 64);
        let leaf = l.leaf_line_of(0x4000);
        let path = l.tree_path_of(leaf);
        assert_eq!(l.parent_of(leaf), Some(path[0]));
        assert_eq!(l.parent_of(path[0]), Some(path[1]));
        // The highest off-chip level's parent is the on-chip root.
        assert_eq!(l.parent_of(path[path.len() - 1]), None);
    }

    #[test]
    fn packing_changes_leaf_count() {
        let p8 = MetadataLayout::counter_tree(8, 64);
        let p64 = MetadataLayout::counter_tree(64, 64);
        let p128 = MetadataLayout::counter_tree(128, 64);
        assert_eq!(p8.leaves, p64.leaves * 8);
        assert_eq!(p64.leaves, p128.leaves * 2);
    }

    #[test]
    fn footprint_is_sane() {
        let l = MetadataLayout::counter_tree(64, 64);
        // ~2.62M counter lines ~= 168 MB plus a small tree.
        let mb = l.footprint_bytes() / (1 << 20);
        assert!((160..200).contains(&mb), "{mb} MB");
    }

    #[test]
    #[should_panic(expected = "beyond protected span")]
    fn out_of_span_address_panics() {
        let l = MetadataLayout::counter_tree(64, 64);
        let _ = l.leaf_line_of(DATA_SPAN);
    }
}
