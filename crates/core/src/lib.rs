//! SecDDR: the paper's primary contribution, as both a functional protocol
//! (re-exported from `dimm-model`) and a set of cycle-level performance
//! models over the `dram-sim` + `cpu-model` substrates.
//!
//! The crate provides:
//!
//! * [`config`] — the evaluated system configurations of Section IV-B:
//!   the Intel-TDX-like normalization baseline, counter integrity trees of
//!   any arity (64-ary baseline, 128-ary Morphable-style, 8-ary hash/Merkle
//!   tree), SecDDR with counter-mode or AES-XTS encryption, encrypt-only
//!   upper bounds, and DDR-adapted InvisiMem (unrealistic @3200 and
//!   realistic @2400).
//! * [`metadata`] — the physical layout of security metadata (encryption
//!   counters, MAC lines, tree levels) in the protected address space.
//! * [`engine`] — [`engine::SecurityEngine`], a
//!   [`cpu_model::MemoryBackend`] that injects each configuration's
//!   metadata traffic and cryptographic latencies between the LLC and the
//!   DDR4 channel.
//! * [`system`] — one-call experiment runner producing IPC normalized to
//!   the TDX baseline, exactly as Figures 6, 8, 10, 12 report.
//! * [`analysis`] — the closed-form security analyses of Sections III-B
//!   and III-C (eWCRC brute-force longevity, counter overflow horizon).
//!
//! # Example
//!
//! ```no_run
//! use secddr_core::config::SecurityConfig;
//! use secddr_core::system::{run_benchmark, RunParams};
//! use workloads::Benchmark;
//!
//! let params = RunParams { instructions: 200_000, seed: 1 };
//! let bench = Benchmark::by_name("mcf").unwrap();
//! let tdx = run_benchmark(&bench, &SecurityConfig::tdx_baseline(), &params);
//! let secddr = run_benchmark(&bench, &SecurityConfig::secddr_xts(), &params);
//! println!("normalized IPC: {:.3}", secddr.ipc() / tdx.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod engine;
pub mod metadata;
pub mod system;

pub use config::{EncMode, Mechanism, SecurityConfig};
pub use engine::{EngineStats, SecurityEngine};
pub use system::{gmean, run_benchmark, RunParams, RunResult};

// The functional protocol layer (attacks, attestation, E-MAC channel).
pub use dimm_model as functional;
