//! The security engine: everything that sits between the LLC and the DDR4
//! channel for a given configuration.
//!
//! [`SecurityEngine`] implements [`cpu_model::MemoryBackend`]. For each
//! LLC-miss read it issues the data fetch plus whatever metadata traffic
//! the configuration requires (encryption-counter lines, MAC lines,
//! integrity-tree nodes missing from the 128 KB metadata cache), and adds
//! the configuration's cryptographic latency once all parts return. For
//! writebacks it issues the data write and dirties/fetches the counter
//! line; dirty metadata evictions become extra DRAM writes and propagate
//! dirtiness to parent tree nodes.

use std::collections::VecDeque;
use std::rc::Rc;

use cpu_model::cache::{Cache, CacheConfig, CacheStats};
use cpu_model::system::{AccessKind, Busy, MemoryBackend};
use dram_sim::{DramSystem, MemRequest, ReqKind};
use sim_kernel::{Advance, EventQueue};

use crate::config::{EncMode, Mechanism, SecurityConfig, CRYPTO_LATENCY};
use crate::metadata::{MetadataLayout, DATA_SPAN};

/// Traffic and cache statistics accumulated by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Demand data reads issued to DRAM.
    pub data_reads: u64,
    /// Data writebacks issued to DRAM.
    pub data_writes: u64,
    /// Encryption-counter / MAC leaf lines fetched from DRAM.
    pub leaf_fetches: u64,
    /// Integrity-tree nodes fetched from DRAM.
    pub tree_fetches: u64,
    /// Dirty metadata lines written back to DRAM.
    pub metadata_writebacks: u64,
    /// Metadata-cache demand accesses (for Figure 7's miss rate).
    pub metadata_cache: CacheStats,
}

impl EngineStats {
    /// Metadata-cache misses (Figure 7's numerator).
    pub fn metadata_misses(&self) -> u64 {
        self.metadata_cache.misses
    }

    /// Accumulates `other` into `self` — every traffic counter and the
    /// metadata-cache statistics sum, so per-shard engine statistics
    /// aggregate into one view of a multi-channel backend.
    pub fn merge(&mut self, other: &Self) {
        // Exhaustive destructuring: a new field must pick a merge rule.
        let Self {
            data_reads,
            data_writes,
            leaf_fetches,
            tree_fetches,
            metadata_writebacks,
            metadata_cache,
        } = other;
        self.data_reads += data_reads;
        self.data_writes += data_writes;
        self.leaf_fetches += leaf_fetches;
        self.tree_fetches += tree_fetches;
        self.metadata_writebacks += metadata_writebacks;
        self.metadata_cache.merge(metadata_cache);
    }
}

#[derive(Debug)]
struct Transaction {
    remaining: u32,
    latest_arrival_cpu: u64,
    extra_latency: u64,
}

/// Part-slot sentinel: enqueued traffic no transaction waits on
/// (data/metadata writes, untracked parent fetches). Completes like any
/// request but routes nowhere.
const UNTRACKED_PART: u64 = u64::MAX - 1;
/// Part-slot sentinel: already completed, or never enqueued (allocation
/// raced a full queue) — the window's front can slide past it.
const DEAD_PART: u64 = u64::MAX;
/// `Transaction::remaining` placeholder for a read token between its
/// allocation and its part count being known; nonzero so the window's
/// front cannot slide past a transaction still being assembled.
const TXN_ASSEMBLING: u32 = u32::MAX;

/// Tuning knobs for ablation studies (DESIGN.md §5). [`Default`] matches
/// the paper's setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Metadata cache capacity in bytes (Table I: 128 KB).
    pub metadata_cache_bytes: u64,
    /// Fetch missing tree levels serially (one after the other) instead of
    /// in parallel. The paper's baseline "allow[s] parallel tree-level
    /// verification"; serial fetch quantifies what that buys.
    pub serial_tree_fetch: bool,
    /// Force BL8 writes even for SecDDR (isolates the eWCRC burst cost).
    pub force_bl8: bool,
    /// Schedule first-come-first-served instead of FR-FCFS (no row-hit
    /// prioritization).
    pub fcfs: bool,
    /// Clock advance policy for the engine's DRAM channel: event-driven
    /// idle-skip (default) or the per-cycle reference semantics.
    pub advance: Advance,
    /// Route the CPU system's multi-access events through
    /// [`cpu_model::system::MemoryBackend::submit_batch`] (default) or
    /// one `submit` call per access. Observationally identical; pinned by
    /// the batch-equivalence tests.
    pub batched_ingestion: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            metadata_cache_bytes: 128 << 10,
            serial_tree_fetch: false,
            force_bl8: false,
            fcfs: false,
            advance: Advance::ToNextEvent,
            batched_ingestion: true,
        }
    }
}

/// A [`MemoryBackend`] injecting one security configuration's metadata
/// traffic and crypto latency over a [`DramSystem`].
#[derive(Debug)]
pub struct SecurityEngine {
    cfg: SecurityConfig,
    dram: DramSystem,
    /// Shared so the hot paths can detach a handle from `&mut self`
    /// without cloning the level table.
    layout: Option<Rc<MetadataLayout>>,
    md_cache: Cache,
    cpu_mhz: u64,
    mem_mhz: u64,
    next_token: u64,
    next_part: u64,
    /// Owning token per part id, as a dense sliding window over the part
    /// sequence: slot `p - part_base` holds the token of part `p`
    /// ([`UNTRACKED_PART`] for traffic no transaction waits on,
    /// [`DEAD_PART`] once completed or never enqueued). Parts complete
    /// within the channel's bounded in-flight window, so the deque stays
    /// small and routing a completion is one array store instead of a
    /// hash-map remove on the busiest shared path in the simulator.
    part_token: VecDeque<u64>,
    /// Part id of `part_token`'s front slot.
    part_base: u64,
    /// In-flight read transactions, as the same dense sliding window
    /// over the token sequence (`remaining == 0` marks a dead slot:
    /// a posted write's token or a completed read).
    transactions: VecDeque<Transaction>,
    /// Token id of `transactions`' front slot.
    txn_base: u64,
    /// Live (incomplete read) entries in `transactions`.
    live_txns: usize,
    /// Lower bound on `extra_latency` across in-flight transactions
    /// (tightened on insert, reset when none remain). Lets
    /// [`MemoryBackend::next_completion_event`] push the CPU's wake-up
    /// past the crypto latency instead of the next raw DRAM activity.
    min_extra_in_flight: u64,
    /// Completed reads, scheduled at the CPU cycle they become visible.
    ready: EventQueue<u64>,
    pending_md_writes: VecDeque<u64>,
    stats: EngineStats,
    options: EngineOptions,
    /// CPU-cycle epoch width the channel series was enabled at (`None`
    /// when series recording is off). The channel records in its own
    /// mem-cycle domain; snapshots are relabeled back to this width so
    /// engine- and core-domain series merge at aligned epochs.
    series_width_cpu: Option<u64>,
}

/// Random virtual→physical 4 KB page mapping (Table I: "virtual page size
/// 4KB with random policy for virtual page to physical frame mapping").
/// A fixed splitmix64 hash keeps the mapping deterministic across
/// configurations while spreading pages — and therefore counter lines and
/// tree nodes — uniformly over the protected span, exactly the effect the
/// paper notes limits counter-packing locality.
#[inline]
fn translate(vaddr: u64) -> u64 {
    const PAGE_SHIFT: u64 = 12;
    let vpage = vaddr >> PAGE_SHIFT;
    let mut z = vpage.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let frames = DATA_SPAN >> PAGE_SHIFT;
    let pframe = z % frames;
    (pframe << PAGE_SHIFT) | (vaddr & ((1 << PAGE_SHIFT) - 1))
}

impl SecurityEngine {
    /// Builds the engine for `cfg`, with the CPU clock (MHz) used to
    /// convert between core and memory cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: SecurityConfig, cpu_mhz: u32) -> Self {
        Self::with_options(cfg, cpu_mhz, EngineOptions::default())
    }

    /// As [`Self::new`] with explicit ablation knobs.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails or the metadata cache geometry is
    /// invalid.
    pub fn with_options(cfg: SecurityConfig, cpu_mhz: u32, options: EngineOptions) -> Self {
        cfg.validate().expect("invalid security configuration");
        let mut dram_cfg = cfg.dram_config();
        if options.force_bl8 {
            dram_cfg.write_burst_cycles = 4;
            dram_cfg.write_extra_cycles = 0;
        }
        dram_cfg.fcfs = options.fcfs;
        let mem_mhz = u64::from(dram_cfg.freq_mhz);
        let layout = match cfg.mechanism {
            Mechanism::HashTree { arity } => Some(MetadataLayout::hash_tree(u64::from(arity))),
            Mechanism::CounterTree { arity } => Some(MetadataLayout::counter_tree(
                u64::from(cfg.ctr_packing),
                u64::from(arity),
            )),
            _ if cfg.uses_counters() => {
                Some(MetadataLayout::counter_tree(u64::from(cfg.ctr_packing), 0))
            }
            _ => None,
        }
        .map(Rc::new);
        Self {
            cfg,
            dram: DramSystem::new(dram_cfg),
            layout,
            md_cache: Cache::new(CacheConfig {
                size_bytes: options.metadata_cache_bytes,
                ..CacheConfig::metadata()
            }),
            cpu_mhz: u64::from(cpu_mhz),
            mem_mhz,
            next_token: 0,
            next_part: 0,
            part_token: VecDeque::new(),
            part_base: 0,
            transactions: VecDeque::new(),
            txn_base: 0,
            live_txns: 0,
            min_extra_in_flight: u64::MAX,
            ready: EventQueue::new(),
            pending_md_writes: VecDeque::new(),
            stats: EngineStats::default(),
            options,
            series_width_cpu: None,
        }
    }

    /// The configuration under evaluation.
    pub fn config(&self) -> &SecurityConfig {
        &self.cfg
    }

    /// Engine statistics (metadata traffic, cache behaviour).
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.metadata_cache = *self.md_cache.stats();
        s
    }

    /// The underlying DRAM channel statistics.
    pub fn dram_stats(&self) -> dram_sim::DramStats {
        self.dram.stats()
    }

    /// The channel controller's telemetry (advance-policy counters and
    /// decision-cause attribution; not part of bit-identity).
    pub fn dram_telemetry(&self) -> dram_sim::ControllerTelemetry {
        self.dram.telemetry()
    }

    /// Turns on sim-time windowed series recording on the underlying
    /// channel at `epoch_width` **CPU cycles** per epoch. The channel
    /// records in its own mem-cycle domain (the width is converted
    /// through the clock ratio) and [`Self::series_snapshot`] relabels
    /// the result back, so engine series merge with core-domain series
    /// at aligned real-time epochs. Zero-perturbation: see
    /// [`DramSystem::enable_series`](dram_sim::DramSystem::enable_series).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_width` is zero.
    pub fn enable_series(&mut self, epoch_width: u64) {
        assert!(epoch_width > 0, "epoch width must be nonzero");
        self.series_width_cpu = Some(epoch_width);
        self.dram
            .enable_series(self.mem_cycle_for(epoch_width).max(1));
    }

    /// The channel's recorded series (`None` unless
    /// [`Self::enable_series`] was called), relabeled to the CPU-cycle
    /// epoch width. Sync the engine first for an up-to-date view.
    pub fn series_snapshot(&self) -> Option<secddr_telemetry::SeriesSnapshot> {
        let width = self.series_width_cpu?;
        let mut snap = self.dram.series_snapshot()?;
        snap.epoch_width = width;
        Some(snap)
    }

    /// Advances the engine's channel to CPU cycle `now` without
    /// harvesting completed tokens — they stay scheduled in the ready
    /// queue for the next [`MemoryBackend::tick`].
    ///
    /// A multi-channel front-end that skipped this engine's ticks while
    /// its [`MemoryBackend::next_event`] bound was in the future (so the
    /// skipped ticks were provably observation-free) uses this to catch
    /// a lagging shard up before reading its statistics; the deferred
    /// catch-up is cycle-identical to having ticked every step.
    pub fn sync_to(&mut self, now: u64) {
        let mem_due = self.mem_cycle_for(now);
        self.advance(mem_due);
    }

    #[inline]
    fn mem_cycle_for(&self, cpu_cycle: u64) -> u64 {
        cpu_cycle * self.mem_mhz / self.cpu_mhz
    }

    #[inline]
    fn cpu_cycle_for(&self, mem_cycle: u64) -> u64 {
        (mem_cycle * self.cpu_mhz).div_ceil(self.mem_mhz)
    }

    /// The crypto latency added once a read's last part has arrived.
    fn read_extra_latency(&self, leaf_missed: bool) -> u64 {
        match self.cfg.mechanism {
            // TDX / trees / SecDDR verify a MAC (and decrypt in parallel).
            Mechanism::Tdx
            | Mechanism::CounterTree { .. }
            | Mechanism::HashTree { .. }
            | Mechanism::SecDdr => CRYPTO_LATENCY,
            Mechanism::EncryptOnly => match self.cfg.enc {
                EncMode::Xts => CRYPTO_LATENCY,
                // Counter hit: the OTP was precomputed during the data
                // fetch; decryption is a XOR.
                EncMode::Ctr => {
                    if leaf_missed {
                        CRYPTO_LATENCY
                    } else {
                        0
                    }
                }
            },
            // Memory-side MAC generation plus processor-side verification:
            // 2x MAC latency on the critical path (Section VI-D).
            Mechanism::InvisiMem { .. } => 2 * CRYPTO_LATENCY,
        }
    }

    /// Allocates the next part id, recording `slot` (an owning token or a
    /// sentinel) in the routing window.
    fn alloc_part(&mut self, slot: u64) -> u64 {
        let part = self.next_part;
        self.next_part += 1;
        self.part_token.push_back(slot);
        part
    }

    /// Allocates the next token id; a read passes `assembling` (its part
    /// count is filled in once the metadata walk is done), a posted write
    /// burns the id with a dead slot.
    fn alloc_token(&mut self, assembling: bool) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.transactions.push_back(Transaction {
            remaining: if assembling { TXN_ASSEMBLING } else { 0 },
            latest_arrival_cpu: 0,
            extra_latency: 0,
        });
        if !assembling {
            // A burned write id may leave dead slots at the front; slide
            // now so a write-heavy phase cannot grow the window.
            while matches!(self.transactions.front(), Some(t) if t.remaining == 0) {
                self.transactions.pop_front();
                self.txn_base += 1;
            }
        }
        token
    }

    /// Accesses the metadata cache for `line`; on a miss, fetches it from
    /// DRAM as part of transaction `token` (or untracked when `token` is
    /// `None`) and installs it. Returns `true` when it missed.
    fn metadata_access(
        &mut self,
        line: u64,
        is_write: bool,
        token: Option<u64>,
        now_mem: u64,
        parts: &mut u32,
        is_tree_node: bool,
    ) -> bool {
        if self.md_cache.access(line, is_write) {
            return false;
        }
        // Fetch from DRAM.
        let part = self.next_part;
        let slot = match self
            .dram
            .enqueue(MemRequest::new(part, ReqKind::Read, line, now_mem))
        {
            Ok(()) => {
                if is_tree_node {
                    self.stats.tree_fetches += 1;
                } else {
                    self.stats.leaf_fetches += 1;
                }
                match token {
                    Some(t) => {
                        *parts += 1;
                        t
                    }
                    None => UNTRACKED_PART,
                }
            }
            Err(_) => {
                debug_assert!(
                    token.is_none(),
                    "tracked metadata fetches are capacity pre-checked"
                );
                // Untracked fetch under saturation: elide the DRAM access
                // (models MSHR merging with the concurrent demand traffic).
                DEAD_PART
            }
        };
        let allocated = self.alloc_part(slot);
        debug_assert_eq!(allocated, part);
        if let Some(victim) = self.md_cache.fill(line, is_write) {
            self.queue_md_writeback(victim, now_mem);
        }
        true
    }

    fn queue_md_writeback(&mut self, victim: u64, now_mem: u64) {
        self.stats.metadata_writebacks += 1;
        // Propagate dirtiness to the parent tree node (lazy tree update).
        if let Some(parent) = self.layout.as_deref().and_then(|l| l.parent_of(victim)) {
            {
                if !self.md_cache.access(parent, true) {
                    // Parent not cached: fetch it (untracked) and install
                    // dirty, spilling recursively via this same hook.
                    let part = self.next_part;
                    let slot = if self
                        .dram
                        .enqueue(MemRequest::new(part, ReqKind::Read, parent, now_mem))
                        .is_ok()
                    {
                        self.stats.tree_fetches += 1;
                        UNTRACKED_PART
                    } else {
                        DEAD_PART
                    };
                    let allocated = self.alloc_part(slot);
                    debug_assert_eq!(allocated, part);
                    if let Some(v2) = self.md_cache.fill(parent, true) {
                        self.stats.metadata_writebacks += 1;
                        self.pending_md_writes.push_back(v2);
                    }
                }
            }
        }
        let part = self.next_part;
        let slot = if self
            .dram
            .enqueue(MemRequest::new(part, ReqKind::Write, victim, now_mem))
            .is_ok()
        {
            UNTRACKED_PART
        } else {
            self.pending_md_writes.push_back(victim);
            DEAD_PART
        };
        let allocated = self.alloc_part(slot);
        debug_assert_eq!(allocated, part);
    }

    /// Worst-case read-queue slots one read transaction may need
    /// (including untracked parent fetches spilled by evictions).
    fn max_read_parts(&self) -> usize {
        2 * (1 + self.layout.as_ref().map_or(0, |l| 2 + l.tree_levels()))
    }

    /// Lower bound (CPU cycles) on the next visible read-token time:
    /// already-computed ready times, plus in-flight transactions whose
    /// parts finish no earlier than the earliest pending data beat or —
    /// for parts still queued — the earliest possible READ issue plus CAS
    /// latency and burst, with the transaction's crypto latency on top.
    fn completion_bound(&self) -> u64 {
        let mut bound = u64::MAX;
        if let Some(t) = self.ready.peek_time() {
            bound = bound.min(t);
        }
        if self.live_txns > 0 {
            let mut part_finish = self.dram.next_read_finish_cycle();
            if let Some(t) = self.dram.next_pending_completion() {
                part_finish = part_finish.min(t);
            }
            // Defensive floor: a part must finish strictly in the future.
            part_finish = part_finish.max(self.dram.cycle() + 1);
            let extra = if self.min_extra_in_flight == u64::MAX {
                0
            } else {
                self.min_extra_in_flight
            };
            bound = bound.min(self.cpu_cycle_for(part_finish).saturating_add(extra));
        }
        bound
    }

    /// Advances the DRAM channel to `mem_due`, harvesting completions into
    /// the ready queue.
    ///
    /// With the event-driven policy the channel jumps straight to its next
    /// *decision* cycle — the controller's exact bound on when any command
    /// can issue, completion pop, drain flip, or refresh arm (idle or
    /// busy; the old quiescent-only activity skip is subsumed). Metadata
    /// -writeback retries interleave at exactly the same cycles as the
    /// per-cycle reference: while a writeback is spilled *and* the write
    /// queue has room we fall back to per-cycle stepping (the rare case —
    /// a spill implies the queue was just full), and when the queue is
    /// full the retry provably fails until a column command issues, which
    /// is itself a decision cycle the skip never jumps over.
    fn advance(&mut self, mem_due: u64) {
        let event_driven = self.options.advance.is_event_driven();
        while self.dram.cycle() < mem_due {
            if event_driven
                && (self.pending_md_writes.is_empty()
                    || self.dram.write_queue_len() >= self.dram.config().write_queue)
            {
                self.dram.skip_to_next_decision(mem_due);
                if self.dram.cycle() >= mem_due {
                    break;
                }
            }
            for completion in self.dram.tick() {
                let off = (completion.id - self.part_base) as usize;
                let slot = std::mem::replace(&mut self.part_token[off], DEAD_PART);
                // Slide the window's front over everything already done.
                while self.part_token.front() == Some(&DEAD_PART) {
                    self.part_token.pop_front();
                    self.part_base += 1;
                }
                if slot >= UNTRACKED_PART {
                    debug_assert_ne!(slot, DEAD_PART, "part completed twice");
                    continue; // untracked metadata traffic
                }
                let token = slot;
                let arrival = self.cpu_cycle_for(completion.finish_cycle);
                let txn = &mut self.transactions[(token - self.txn_base) as usize];
                txn.remaining -= 1;
                txn.latest_arrival_cpu = txn.latest_arrival_cpu.max(arrival);
                if txn.remaining == 0 {
                    let visible_at = txn.latest_arrival_cpu + txn.extra_latency;
                    while matches!(self.transactions.front(), Some(t) if t.remaining == 0) {
                        self.transactions.pop_front();
                        self.txn_base += 1;
                    }
                    self.live_txns -= 1;
                    if self.live_txns == 0 {
                        self.min_extra_in_flight = u64::MAX;
                    }
                    self.ready.push(visible_at, token);
                }
            }
            // Retry spilled metadata writebacks.
            while let Some(&wb) = self.pending_md_writes.front() {
                let part = self.next_part;
                let mem_now = self.dram.cycle();
                if self
                    .dram
                    .enqueue(MemRequest::new(part, ReqKind::Write, wb, mem_now))
                    .is_ok()
                {
                    let allocated = self.alloc_part(UNTRACKED_PART);
                    debug_assert_eq!(allocated, part);
                    self.pending_md_writes.pop_front();
                } else {
                    break;
                }
            }
        }
    }
}

impl SecurityEngine {
    /// The post-advance body of [`MemoryBackend::submit`]: translation,
    /// backpressure check, and metadata/crypto accounting, with the
    /// channel clock already at `now_mem`. Shared by the per-call and
    /// batched ingestion paths (which differ only in how often they pay
    /// [`Self::advance`]).
    fn submit_at(&mut self, kind: AccessKind, addr: u64, now_mem: u64) -> Result<u64, Busy> {
        let addr = translate(addr % DATA_SPAN);
        match kind {
            AccessKind::Read => {
                if self.dram.read_queue_len() + self.max_read_parts()
                    > self.dram.config().read_queue
                {
                    return Err(Busy);
                }
                let token = self.alloc_token(true);
                let mut parts = 0u32;

                // Data fetch.
                let part = self.alloc_part(token);
                parts += 1;
                self.dram
                    .enqueue(MemRequest::new(part, ReqKind::Read, addr, now_mem))
                    .expect("capacity pre-checked");
                self.stats.data_reads += 1;

                // Metadata fetches.
                let mut leaf_missed = false;
                let mut tree_misses = 0u64;
                if let Some(layout) = self.layout.clone() {
                    let leaf = layout.leaf_line_of(addr);
                    leaf_missed =
                        self.metadata_access(leaf, false, Some(token), now_mem, &mut parts, false);
                    // Tree walk: climb until a cached (trusted) ancestor.
                    for node in layout.tree_path_iter(leaf) {
                        let missed = self.metadata_access(
                            node,
                            false,
                            Some(token),
                            now_mem,
                            &mut parts,
                            true,
                        );
                        if !missed {
                            break;
                        }
                        tree_misses += 1;
                    }
                }

                let mut extra = self.read_extra_latency(leaf_missed);
                if self.options.serial_tree_fetch && tree_misses > 1 {
                    // Without parallel tree-level verification, each level
                    // beyond the first adds a dependent round trip; model
                    // it as one uncontended access per extra level.
                    let cfg = self.dram.config();
                    let per_fetch =
                        self.cpu_cycle_for(cfg.t_rcd + cfg.t_cl + cfg.read_burst_cycles);
                    extra += (tree_misses - 1) * per_fetch;
                }
                self.min_extra_in_flight = self.min_extra_in_flight.min(extra);
                self.transactions[(token - self.txn_base) as usize] = Transaction {
                    remaining: parts,
                    latest_arrival_cpu: 0,
                    extra_latency: extra,
                };
                self.live_txns += 1;
                Ok(token)
            }
            AccessKind::Write => {
                if self.dram.write_queue_len() >= self.dram.config().write_queue {
                    return Err(Busy);
                }
                let part = self.alloc_part(UNTRACKED_PART);
                self.dram
                    .enqueue(MemRequest::new(part, ReqKind::Write, addr, now_mem))
                    .expect("capacity checked");
                self.stats.data_writes += 1;

                // Counter-mode: the write re-encrypts under an incremented
                // counter — the counter line must be present and becomes
                // dirty. (Tree paths are updated lazily on eviction.)
                if self.cfg.uses_counters() {
                    if let Some(leaf) = self.layout.as_deref().map(|l| l.leaf_line_of(addr)) {
                        let mut parts = 0u32;
                        let _ = self.metadata_access(leaf, true, None, now_mem, &mut parts, false);
                    }
                }
                // Writes are posted; token unused by the caller.
                Ok(self.alloc_token(false))
            }
        }
    }
}

impl MemoryBackend for SecurityEngine {
    fn submit(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        _is_prefetch: bool,
    ) -> Result<u64, Busy> {
        // Bring the channel clock up to CPU time before stamping, so
        // enqueue timestamps are never ahead of the controller's clock.
        let now_mem = self.mem_cycle_for(now);
        self.advance(now_mem);
        self.submit_at(kind, addr, now_mem)
    }

    fn submit_batch(
        &mut self,
        batch: &[cpu_model::system::BatchAccess],
        now: u64,
        results: &mut Vec<Result<u64, Busy>>,
    ) {
        // One clock catch-up for the whole batch: after the first advance
        // the per-call path's repeated advances are no-ops at the same
        // `now`, so sharing it is observationally identical to N submits
        // while the translation and backpressure paths run back-to-back
        // on a hot controller.
        let now_mem = self.mem_cycle_for(now);
        self.advance(now_mem);
        for access in batch {
            results.push(self.submit_at(access.kind, access.addr, now_mem));
        }
    }

    fn tick(&mut self, now: u64) -> Vec<u64> {
        let mem_due = self.mem_cycle_for(now);
        self.advance(mem_due);
        let mut done = Vec::new();
        while let Some((_, token)) = self.ready.pop_due(now) {
            done.push(token);
        }
        done
    }

    fn advance_to(&mut self, target: u64, completions: &mut Vec<(u64, u64)>) {
        // One channel catch-up for the whole window (the [`Self::sync_to`]
        // idiom), then drain the ready queue with its visibility stamps —
        // `ready` pops in (cycle, insertion) order, which is exactly the
        // order a per-cycle tick loop would have delivered.
        let mem_due = self.mem_cycle_for(target);
        self.advance(mem_due);
        while let Some((at, token)) = self.ready.pop_due(target) {
            completions.push((at, token));
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        let mut bound = self.completion_bound();
        // Any queued or in-flight DRAM work can free queue space
        // (unblocking Busy submits and writeback retries); bound it by
        // the channel's next possible activity. Pure refresh upkeep on an
        // idle channel is invisible to the CPU and is caught up on the
        // next tick, so it adds no bound here.
        if !self.dram.is_idle() {
            // Decision cycles are the only cycles where a command issues
            // or a completion pops — i.e. the only cycles queue space can
            // free or data can return — so the decision bound is a valid
            // (and much tighter than `now + 1`) wake-up for a busy
            // channel. The one exception mirrors `advance`: a spilled
            // metadata writeback with queue room must retry next cycle.
            let mem_next = if self.pending_md_writes.is_empty()
                || self.dram.write_queue_len() >= self.dram.config().write_queue
            {
                self.dram.next_decision_cycle()
            } else {
                self.dram.cycle() + 1
            };
            bound = bound.min(self.cpu_cycle_for(mem_next));
        }
        if bound == u64::MAX {
            None
        } else {
            Some(bound.max(now + 1))
        }
    }

    fn next_completion_event(&self, now: u64) -> Option<u64> {
        let bound = self.completion_bound();
        if bound == u64::MAX {
            None
        } else {
            Some(bound.max(now + 1))
        }
    }

    fn next_read_capacity_event(&self, now: u64, _addr: u64) -> Option<u64> {
        // Read-queue capacity frees exactly when a READ column command
        // issues; completions stay observable through the same bound.
        // A single channel serves every address, so `_addr` is unused.
        let mut bound = self.completion_bound();
        if self.dram.read_queue_len() > 0 {
            bound = bound.min(self.cpu_cycle_for(self.dram.next_read_issue_cycle()));
        } else {
            // Capacity is already available; retry immediately.
            bound = bound.min(now + 1);
        }
        if bound == u64::MAX {
            None
        } else {
            Some(bound.max(now + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CPU_MHZ: u32 = 3200;

    fn drive_to_completion(engine: &mut SecurityEngine, token: u64, start: u64) -> u64 {
        for now in start..start + 100_000 {
            if engine.tick(now).contains(&token) {
                return now;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn tdx_read_completes_with_crypto_latency() {
        let mut e = SecurityEngine::new(SecurityConfig::tdx_baseline(), CPU_MHZ);
        let t = e.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
        let done = drive_to_completion(&mut e, t, 101);
        // ~ (1 + tRCD + tCL + burst) * 2 cpu-per-mem + 40 crypto.
        let dram_cycles = 1 + 22 + 22 + 4;
        assert!(done >= 100 + dram_cycles * 2 + 40, "done {done}");
        assert!(done < 100 + dram_cycles * 2 + 40 + 30, "done {done}");
        assert_eq!(e.stats().data_reads, 1);
        assert_eq!(e.stats().leaf_fetches, 0, "TDX has no metadata traffic");
    }

    #[test]
    fn encrypt_only_ctr_fetches_counter_once() {
        let mut e = SecurityEngine::new(SecurityConfig::encrypt_only_ctr(), CPU_MHZ);
        let t = e.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
        drive_to_completion(&mut e, t, 101);
        assert_eq!(e.stats().leaf_fetches, 1);
        // Second read under the same counter line: cached.
        let t2 = e.submit(AccessKind::Read, 0x4040, 5_000, false).unwrap();
        drive_to_completion(&mut e, t2, 5_001);
        assert_eq!(e.stats().leaf_fetches, 1);
        assert_eq!(e.stats().metadata_cache.hits, 1);
    }

    #[test]
    fn counter_hit_read_is_faster_than_xts_read() {
        // Warm the counter, then compare one read's latency against the
        // encrypt-only XTS engine (which always pays the AES latency).
        let mut ctr = SecurityEngine::new(SecurityConfig::encrypt_only_ctr(), CPU_MHZ);
        let w = ctr.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
        drive_to_completion(&mut ctr, w, 101);
        let t = ctr.submit(AccessKind::Read, 0x4040, 10_000, false).unwrap();
        let ctr_done = drive_to_completion(&mut ctr, t, 10_001) - 10_000;

        let mut xts = SecurityEngine::new(SecurityConfig::encrypt_only_xts(), CPU_MHZ);
        let w = xts.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
        drive_to_completion(&mut xts, w, 101);
        let t = xts.submit(AccessKind::Read, 0x4040, 10_000, false).unwrap();
        let xts_done = drive_to_completion(&mut xts, t, 10_001) - 10_000;

        assert!(
            ctr_done + CRYPTO_LATENCY <= xts_done + 10,
            "ctr hit {ctr_done} vs xts {xts_done}"
        );
    }

    #[test]
    fn tree_cold_read_walks_all_levels() {
        let mut e = SecurityEngine::new(SecurityConfig::tree_64ary(), CPU_MHZ);
        let t = e.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
        drive_to_completion(&mut e, t, 101);
        let s = e.stats();
        assert_eq!(s.leaf_fetches, 1, "counter line");
        assert_eq!(s.tree_fetches, 3, "all three off-chip levels cold");
    }

    #[test]
    fn tree_walk_stops_at_cached_ancestor() {
        let mut e = SecurityEngine::new(SecurityConfig::tree_64ary(), CPU_MHZ);
        let t = e.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
        drive_to_completion(&mut e, t, 101);
        // A line in the same 4 KB page: same counter line, whole path
        // cached — no new metadata fetches at all.
        let t2 = e.submit(AccessKind::Read, 0x4080, 10_000, false).unwrap();
        drive_to_completion(&mut e, t2, 10_001);
        let s = e.stats();
        assert_eq!(s.leaf_fetches, 1, "counter line cached");
        assert_eq!(s.tree_fetches, 3, "no further tree fetches");
    }

    #[test]
    fn tree_read_is_slower_than_secddr_read_when_cold() {
        let lat = |cfg: SecurityConfig| -> u64 {
            let mut e = SecurityEngine::new(cfg, CPU_MHZ);
            let t = e.submit(AccessKind::Read, 0x123_4000, 100, false).unwrap();
            drive_to_completion(&mut e, t, 101) - 100
        };
        let tree = lat(SecurityConfig::tree_64ary());
        let secddr = lat(SecurityConfig::secddr_ctr());
        assert!(tree > secddr, "tree {tree} vs secddr {secddr}");
    }

    #[test]
    fn invisimem_adds_double_mac_latency() {
        let lat = |cfg: SecurityConfig| -> u64 {
            let mut e = SecurityEngine::new(cfg, CPU_MHZ);
            let t = e.submit(AccessKind::Read, 0x4000, 100, false).unwrap();
            drive_to_completion(&mut e, t, 101) - 100
        };
        let tdx = lat(SecurityConfig::tdx_baseline());
        let inv = lat(SecurityConfig::invisimem_unrealistic(EncMode::Xts));
        assert_eq!(inv, tdx + CRYPTO_LATENCY, "one extra MAC on the path");
        let real = lat(SecurityConfig::invisimem_realistic(EncMode::Xts));
        assert!(real > inv, "derated channel is slower: {real} vs {inv}");
    }

    #[test]
    fn writes_dirty_counter_lines_and_cause_writebacks() {
        let mut e = SecurityEngine::new(SecurityConfig::secddr_ctr(), CPU_MHZ);
        // Touch many distinct counter lines with writes: 128KB cache / 64B
        // = 2048 lines; go well past that.
        let mut now = 100u64;
        for i in 0..6_000u64 {
            // Stride of one counter line (64 data lines).
            let addr = i * 64 * 64;
            loop {
                match e.submit(AccessKind::Write, addr, now, false) {
                    Ok(_) => break,
                    Err(Busy) => {
                        now += 50;
                        e.tick(now);
                    }
                }
            }
            now += 20;
            e.tick(now);
        }
        for _ in 0..10_000 {
            now += 10;
            e.tick(now);
        }
        let s = e.stats();
        // 6000 distinct counter lines against a 2048-line metadata cache:
        // nearly every write misses (some fetches are elided under queue
        // saturation, so compare cache misses, and require substantial
        // real fetch + writeback traffic).
        assert!(
            s.metadata_cache.misses > 4_000,
            "write misses: {:?}",
            s.metadata_cache
        );
        assert!(
            s.leaf_fetches > 500,
            "fetch-on-write-miss: {}",
            s.leaf_fetches
        );
        assert!(
            s.metadata_writebacks > 1_000,
            "dirty evictions: {}",
            s.metadata_writebacks
        );
    }

    #[test]
    fn read_queue_backpressure_reports_busy() {
        let mut e = SecurityEngine::new(SecurityConfig::tdx_baseline(), CPU_MHZ);
        let mut busy_seen = false;
        for i in 0..200u64 {
            match e.submit(AccessKind::Read, i * 0x40000, 10, false) {
                Ok(_) => {}
                Err(Busy) => {
                    busy_seen = true;
                    break;
                }
            }
        }
        assert!(busy_seen, "queue must eventually fill without ticking");
    }

    #[test]
    fn force_bl8_restores_stock_write_bursts() {
        let e = SecurityEngine::with_options(
            SecurityConfig::secddr_xts(),
            CPU_MHZ,
            EngineOptions {
                force_bl8: true,
                ..Default::default()
            },
        );
        assert_eq!(e.dram.config().write_burst_cycles, 4);
        assert_eq!(e.dram.config().write_extra_cycles, 0);
        let stock = SecurityEngine::new(SecurityConfig::secddr_xts(), CPU_MHZ);
        assert_eq!(stock.dram.config().write_burst_cycles, 5);
    }

    #[test]
    fn metadata_cache_size_option_is_applied() {
        let e = SecurityEngine::with_options(
            SecurityConfig::tree_64ary(),
            CPU_MHZ,
            EngineOptions {
                metadata_cache_bytes: 32 << 10,
                ..Default::default()
            },
        );
        assert_eq!(e.md_cache.config().size_bytes, 32 << 10);
    }

    #[test]
    fn serial_tree_fetch_slows_cold_reads() {
        let lat = |serial: bool| -> u64 {
            let mut e = SecurityEngine::with_options(
                SecurityConfig::tree_64ary(),
                CPU_MHZ,
                EngineOptions {
                    serial_tree_fetch: serial,
                    ..Default::default()
                },
            );
            let t = e.submit(AccessKind::Read, 0x55_5000, 100, false).unwrap();
            drive_to_completion(&mut e, t, 101) - 100
        };
        let parallel = lat(false);
        let serial = lat(true);
        assert!(
            serial > parallel + 80,
            "cold walk has >=2 missing levels: serial {serial} vs parallel {parallel}"
        );
    }

    #[test]
    fn eight_ary_hash_tree_generates_most_traffic() {
        let traffic = |cfg: SecurityConfig| -> u64 {
            let mut e = SecurityEngine::new(cfg, CPU_MHZ);
            let mut now = 100u64;
            for i in 0..200u64 {
                let addr = (i * 0x100_0000) % DATA_SPAN;
                loop {
                    match e.submit(AccessKind::Read, addr, now, false) {
                        Ok(_) => break,
                        Err(Busy) => {
                            now += 50;
                            e.tick(now);
                        }
                    }
                }
                now += 100;
                e.tick(now);
            }
            for _ in 0..1000 {
                now += 100;
                e.tick(now);
            }
            let s = e.stats();
            s.leaf_fetches + s.tree_fetches
        };
        let t8 = traffic(SecurityConfig::tree_8ary_hash());
        let t64 = traffic(SecurityConfig::tree_64ary());
        let secddr = traffic(SecurityConfig::secddr_xts());
        assert!(t8 > t64, "8-ary {t8} vs 64-ary {t64}");
        assert_eq!(secddr, 0, "SecDDR+XTS has no metadata traffic");
    }
}
