//! Counter-mode keystream generation.
//!
//! Counter-mode encryption is the SGX-style confidentiality scheme the
//! paper's baseline uses, and the same construction produces the one-time
//! pads SecDDR XORs into MACs (see [`crate::otp`]). A keystream block is
//! `AES_k(nonce || counter)`; encryption and decryption are the same XOR.

use crate::aes::Aes128;

/// Counter-mode keystream generator over an [`Aes128`] key.
///
/// ```
/// use secddr_crypto::{aes::Aes128, ctr::CtrStream};
/// let aes = Aes128::new(&[3u8; 16]);
/// let ks = CtrStream::new(aes);
/// let mut line = [0x5A_u8; 64];
/// let orig = line;
/// ks.xor_keystream(0x1000, 7, &mut line);
/// assert_ne!(line, orig);
/// ks.xor_keystream(0x1000, 7, &mut line);
/// assert_eq!(line, orig);
/// ```
#[derive(Debug, Clone)]
pub struct CtrStream {
    aes: Aes128,
}

impl CtrStream {
    /// Creates a keystream generator from an expanded AES key.
    pub fn new(aes: Aes128) -> Self {
        Self { aes }
    }

    /// Produces the 16-byte keystream block for `(nonce, counter, index)`.
    ///
    /// `nonce` is typically a line address and `counter` the per-line
    /// encryption counter; `index` selects the block within a 64-byte line.
    pub fn keystream_block(&self, nonce: u64, counter: u64, index: u32) -> [u8; 16] {
        let mut input = [0u8; 16];
        input[0..8].copy_from_slice(&nonce.to_le_bytes());
        // Fold the block index into the counter half so every block of a
        // line gets a distinct pad.
        let ctr_word = counter.wrapping_mul(8).wrapping_add(u64::from(index));
        input[8..16].copy_from_slice(&ctr_word.to_le_bytes());
        self.aes.encrypt_block(&input)
    }

    /// XORs the keystream for `(nonce, counter)` into `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn xor_keystream(&self, nonce: u64, counter: u64, data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(16),
            "counter mode operates on 16-byte blocks"
        );
        for (i, chunk) in data.chunks_exact_mut(16).enumerate() {
            let ks = self.keystream_block(nonce, counter, i as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> CtrStream {
        CtrStream::new(Aes128::new(&[0xA5; 16]))
    }

    #[test]
    fn roundtrip() {
        let ks = stream();
        let mut line = [0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = i as u8;
        }
        let orig = line;
        ks.xor_keystream(42, 1, &mut line);
        assert_ne!(line, orig);
        ks.xor_keystream(42, 1, &mut line);
        assert_eq!(line, orig);
    }

    #[test]
    fn distinct_counters_give_distinct_ciphertexts() {
        let ks = stream();
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        ks.xor_keystream(42, 1, &mut a);
        ks.xor_keystream(42, 2, &mut b);
        assert_ne!(a, b, "temporal uniqueness: fresh counter => fresh pad");
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let ks = stream();
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        ks.xor_keystream(1, 9, &mut a);
        ks.xor_keystream(2, 9, &mut b);
        assert_ne!(a, b, "spatial uniqueness: address in the nonce");
    }

    #[test]
    fn blocks_within_line_differ() {
        let ks = stream();
        let a = ks.keystream_block(5, 5, 0);
        let b = ks.keystream_block(5, 5, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_block_index_do_not_alias() {
        // counter*8 + index must be injective for index < 8.
        let ks = stream();
        let a = ks.keystream_block(5, 1, 0); // ctr_word = 8
        let b = ks.keystream_block(5, 0, 7); // ctr_word = 7
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "16-byte blocks")]
    fn unaligned_length_panics() {
        let ks = stream();
        let mut data = [0u8; 10];
        ks.xor_keystream(0, 0, &mut data);
    }
}
