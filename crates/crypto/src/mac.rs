//! AES-CMAC (RFC 4493) and the per-line MAC construction.
//!
//! Secure memories guard each cache line with a MAC over the data *and its
//! physical address* (the address binding is what forces a replay attacker
//! to replay to the same location, Section II-C of the paper). SecDDR keeps
//! this MAC as the at-rest integrity witness and encrypts it on the bus.
//! [`Cmac::line_mac`] produces the 64-bit truncated `MAC = H_k(data, addr)`
//! used throughout the repository.

use crate::aes::Aes128;

/// AES-CMAC keyed hash.
#[derive(Debug, Clone)]
pub struct Cmac {
    aes: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

#[inline]
fn shift_left_one(input: &[u8; 16]) -> ([u8; 16], bool) {
    let mut out = [0u8; 16];
    let mut carry = false;
    for i in (0..16).rev() {
        let new_carry = input[i] & 0x80 != 0;
        out[i] = (input[i] << 1) | u8::from(carry);
        carry = new_carry;
    }
    (out, carry)
}

impl Cmac {
    /// Derives the CMAC subkeys from an expanded AES key.
    pub fn new(aes: Aes128) -> Self {
        let l = aes.encrypt_block(&[0u8; 16]);
        let (mut k1, msb1) = shift_left_one(&l);
        if msb1 {
            k1[15] ^= 0x87;
        }
        let (mut k2, msb2) = shift_left_one(&k1);
        if msb2 {
            k2[15] ^= 0x87;
        }
        Self { aes, k1, k2 }
    }

    /// Computes the full 128-bit CMAC tag over `msg`.
    pub fn tag(&self, msg: &[u8]) -> [u8; 16] {
        let n_blocks = msg.len().div_ceil(16).max(1);
        let complete_last = !msg.is_empty() && msg.len().is_multiple_of(16);

        let mut x = [0u8; 16];
        for i in 0..n_blocks - 1 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&msg[16 * i..16 * (i + 1)]);
            for (b, xv) in block.iter_mut().zip(x.iter()) {
                *b ^= xv;
            }
            x = self.aes.encrypt_block(&block);
        }

        let mut last = [0u8; 16];
        if complete_last {
            last.copy_from_slice(&msg[16 * (n_blocks - 1)..]);
            for (b, k) in last.iter_mut().zip(self.k1.iter()) {
                *b ^= k;
            }
        } else {
            let tail = &msg[16 * (n_blocks - 1)..];
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (b, k) in last.iter_mut().zip(self.k2.iter()) {
                *b ^= k;
            }
        }
        for (b, xv) in last.iter_mut().zip(x.iter()) {
            *b ^= xv;
        }
        self.aes.encrypt_block(&last)
    }

    /// The 64-bit per-line MAC stored in the ECC chips:
    /// `MAC = truncate64(CMAC_k(data || line_addr))`.
    ///
    /// ```
    /// use secddr_crypto::{aes::Aes128, mac::Cmac};
    /// let cmac = Cmac::new(Aes128::new(&[1u8; 16]));
    /// let m0 = cmac.line_mac(&[0u8; 64], 0x1000);
    /// let m1 = cmac.line_mac(&[0u8; 64], 0x1040);
    /// assert_ne!(m0, m1, "address binding");
    /// ```
    pub fn line_mac(&self, data: &[u8; 64], line_addr: u64) -> u64 {
        let mut msg = [0u8; 72];
        msg[..64].copy_from_slice(data);
        msg[64..].copy_from_slice(&line_addr.to_le_bytes());
        let tag = self.tag(&msg);
        u64::from_le_bytes(tag[..8].try_into().expect("8-byte slice"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> Aes128 {
        Aes128::new(&[
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ])
    }

    const RFC_MSG: [u8; 64] = [
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17,
        0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
        0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19, 0x1a,
        0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b,
        0xe6, 0x6c, 0x37, 0x10,
    ];

    #[test]
    fn rfc4493_example_1_empty() {
        let cmac = Cmac::new(rfc_key());
        let expected = [
            0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
            0x67, 0x46,
        ];
        assert_eq!(cmac.tag(&[]), expected);
    }

    #[test]
    fn rfc4493_example_2_one_block() {
        let cmac = Cmac::new(rfc_key());
        let expected = [
            0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
            0x28, 0x7c,
        ];
        assert_eq!(cmac.tag(&RFC_MSG[..16]), expected);
    }

    #[test]
    fn rfc4493_example_3_partial() {
        let cmac = Cmac::new(rfc_key());
        let expected = [
            0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
            0xc8, 0x27,
        ];
        assert_eq!(cmac.tag(&RFC_MSG[..40]), expected);
    }

    #[test]
    fn rfc4493_example_4_full() {
        let cmac = Cmac::new(rfc_key());
        let expected = [
            0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49, 0x74, 0x17, 0x79, 0x36,
            0x3c, 0xfe,
        ];
        assert_eq!(cmac.tag(&RFC_MSG), expected);
    }

    #[test]
    fn line_mac_depends_on_data() {
        let cmac = Cmac::new(rfc_key());
        let mut data = [0u8; 64];
        let m0 = cmac.line_mac(&data, 0x40);
        data[17] ^= 1;
        assert_ne!(cmac.line_mac(&data, 0x40), m0);
    }

    #[test]
    fn line_mac_depends_on_address() {
        let cmac = Cmac::new(rfc_key());
        let data = [0xCCu8; 64];
        assert_ne!(cmac.line_mac(&data, 0x40), cmac.line_mac(&data, 0x80));
    }

    #[test]
    fn line_mac_is_deterministic() {
        let cmac = Cmac::new(rfc_key());
        let data = [0x01u8; 64];
        assert_eq!(cmac.line_mac(&data, 7), cmac.line_mac(&data, 7));
    }
}
