//! Write CRC and the All-Inclusive-ECC extended write CRC (eWCRC).
//!
//! DDR4/5 chips check each write burst with a per-device write CRC (WCRC)
//! transmitted over two extra beats (burst length 8 → 10 on DDR4). AI-ECC
//! [Kim et al., ISCA'16] extends the covered message with the rank, bank,
//! row, and column address so a chip can reject a write whose command or
//! address was corrupted in flight. SecDDR adopts eWCRC and additionally
//! encrypts it with the address-bound write pad ([`crate::otp`]) so an
//! attacker cannot craft compensating bit flips against the linear CRC.
//!
//! The CRC here is CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), matching
//! the 16-bit per-x8-device budget the paper assumes.

/// Computes CRC-16/CCITT-FALSE over `data`.
///
/// ```
/// use secddr_crypto::crc::crc16;
/// assert_eq!(crc16(b"123456789"), 0x29B1);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// The DRAM coordinates a write command carries; all of them are bound into
/// the eWCRC so any address corruption is detectable at the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WriteAddress {
    /// Rank index within the channel.
    pub rank: u8,
    /// Bank group index.
    pub bank_group: u8,
    /// Bank index within the bank group.
    pub bank: u8,
    /// Row address.
    pub row: u32,
    /// Column address.
    pub column: u16,
}

impl WriteAddress {
    /// Packs the address fields into a canonical byte encoding.
    pub fn encode(&self) -> [u8; 9] {
        let mut out = [0u8; 9];
        out[0] = self.rank;
        out[1] = self.bank_group;
        out[2] = self.bank;
        out[3..7].copy_from_slice(&self.row.to_le_bytes());
        out[7..9].copy_from_slice(&self.column.to_le_bytes());
        out
    }

    /// A flat 64-bit encoding used as the address input to the write pad.
    pub fn as_u64(&self) -> u64 {
        let e = self.encode();
        let mut lo = [0u8; 8];
        lo.copy_from_slice(&e[..8]);
        u64::from_le_bytes(lo) ^ (u64::from(e[8]) << 56).rotate_left(13)
    }
}

/// Extended write CRC generator/checker (AI-ECC eWCRC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ewcrc;

impl Ewcrc {
    /// Generates the eWCRC over the per-chip write data and the full write
    /// address.
    pub fn generate(data: &[u8], addr: &WriteAddress) -> u16 {
        let mut msg = Vec::with_capacity(data.len() + 9);
        msg.extend_from_slice(data);
        msg.extend_from_slice(&addr.encode());
        crc16(&msg)
    }

    /// Verifies a received eWCRC against the locally observed data and
    /// address; returns `true` when they match.
    pub fn verify(data: &[u8], addr: &WriteAddress, received: u16) -> bool {
        Self::generate(data, addr) == received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_check_value() {
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc16_empty_is_init() {
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        let data = [0x55u8; 16];
        let base = crc16(&data);
        for byte in 0..16 {
            for bit in 0..8 {
                let mut corrupted = data;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc16(&corrupted), base, "flip at {byte}:{bit}");
            }
        }
    }

    fn addr() -> WriteAddress {
        WriteAddress {
            rank: 1,
            bank_group: 2,
            bank: 3,
            row: 0x1234,
            column: 0x56,
        }
    }

    #[test]
    fn ewcrc_roundtrip() {
        let data = [0xA0u8; 8];
        let c = Ewcrc::generate(&data, &addr());
        assert!(Ewcrc::verify(&data, &addr(), c));
    }

    #[test]
    fn ewcrc_detects_row_corruption() {
        let data = [0xA0u8; 8];
        let c = Ewcrc::generate(&data, &addr());
        let mut wrong = addr();
        wrong.row ^= 0x40; // activate redirected to a different row
        assert!(!Ewcrc::verify(&data, &wrong, c));
    }

    #[test]
    fn ewcrc_detects_column_corruption() {
        let data = [0xA0u8; 8];
        let c = Ewcrc::generate(&data, &addr());
        let mut wrong = addr();
        wrong.column ^= 0x8;
        assert!(!Ewcrc::verify(&data, &wrong, c));
    }

    #[test]
    fn ewcrc_detects_bank_and_rank_corruption() {
        let data = [0x11u8; 8];
        let c = Ewcrc::generate(&data, &addr());
        for field in 0..3 {
            let mut wrong = addr();
            match field {
                0 => wrong.rank ^= 1,
                1 => wrong.bank_group ^= 1,
                _ => wrong.bank ^= 1,
            }
            assert!(!Ewcrc::verify(&data, &wrong, c));
        }
    }

    #[test]
    fn ewcrc_detects_data_corruption() {
        let data = [0xA0u8; 8];
        let c = Ewcrc::generate(&data, &addr());
        let mut wrong = data;
        wrong[3] ^= 0x10;
        assert!(!Ewcrc::verify(&wrong, &addr(), c));
    }

    #[test]
    fn write_address_encoding_is_injective_on_fields() {
        let a = addr();
        let mut b = addr();
        b.row += 1;
        assert_ne!(a.encode(), b.encode());
        assert_ne!(a.as_u64(), b.as_u64());
    }
}
