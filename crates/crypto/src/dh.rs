//! Finite-field Diffie–Hellman key agreement and a Schnorr-style signature,
//! modelling the attestation hardware of Section III-F.
//!
//! The paper equips each rank's ECC chip with an elliptic-curve scalar
//! multiplier and a SHA-256 unit for authenticated key exchange. We model
//! the same *protocol* with classic Diffie–Hellman over the prime field
//! `p = 2^255 − 19` (generator 5) and Schnorr signatures; the algebra is
//! self-contained 256-bit arithmetic, which keeps the artifact free of
//! external crypto crates. This is a simulation stand-in, not a hardened
//! production implementation: the substitution preserves the protocol shape
//! (endorsement keypair, signed ephemeral exchange, derived transaction key)
//! which is what the SecDDR boot/attestation flow exercises.

use crate::sha256::Sha256;

/// 256-bit unsigned integer, little-endian 64-bit limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Most-significant limb first (the limbs are little-endian).
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Builds from a small integer.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes.
    pub fn from_le_bytes(b: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(b[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
        U256(limbs)
    }

    /// Serializes to 32 little-endian bytes.
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Is this value zero?
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, slot) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(u64::from(carry));
            *slot = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, slot) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(u64::from(borrow));
            *slot = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Full 256×256→512-bit product, little-endian limbs.
    fn mul_wide(self, rhs: U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc =
                    u128::from(out[i + j]) + u128::from(self.0[i]) * u128::from(rhs.0[j]) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = carry as u64;
        }
        out
    }

    /// Reduces a 512-bit value modulo `m` by binary long division.
    fn reduce_wide(wide: [u64; 8], m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let mut r = U256::ZERO;
        for bit in (0..512).rev() {
            // r = (r << 1) | wide[bit]
            let mut carry = (wide[bit / 64] >> (bit % 64)) & 1;
            for limb in r.0.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            // carry out of the top limb is impossible because r < m <= 2^256-1
            // and we subtract immediately below.
            if &r >= m {
                let (d, _) = r.overflowing_sub(*m);
                r = d;
            }
        }
        r
    }

    /// `(self + rhs) mod m`. Requires `self, rhs < m`.
    pub fn add_mod(self, rhs: U256, m: &U256) -> U256 {
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= m {
            sum.overflowing_sub(*m).0
        } else {
            sum
        }
    }

    /// `(self - rhs) mod m`. Requires `self, rhs < m`.
    pub fn sub_mod(self, rhs: U256, m: &U256) -> U256 {
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.overflowing_add(*m).0
        } else {
            diff
        }
    }

    /// `(self * rhs) mod m`.
    pub fn mul_mod(self, rhs: U256, m: &U256) -> U256 {
        Self::reduce_wide(self.mul_wide(rhs), m)
    }

    /// `self^exp mod m` by square-and-multiply.
    pub fn pow_mod(self, exp: &U256, m: &U256) -> U256 {
        let mut result = U256::ONE;
        // result must start < m even for m == 1.
        if m == &U256::ONE {
            return U256::ZERO;
        }
        let mut base = Self::reduce_wide(
            {
                let mut w = [0u64; 8];
                w[..4].copy_from_slice(&self.0);
                w
            },
            m,
        );
        let mut highest = 0;
        for i in (0..256).rev() {
            if exp.bit(i) {
                highest = i;
                break;
            }
        }
        if exp.is_zero() {
            return U256::ONE;
        }
        for i in (0..=highest).rev() {
            result = result.mul_mod(result, m);
            if exp.bit(i) {
                result = result.mul_mod(base, m);
            }
            let _ = &mut base; // base is fixed; kept for clarity
        }
        result
    }
}

/// The DH group prime `p = 2^255 − 19`.
pub fn group_prime() -> U256 {
    U256([
        0xFFFF_FFFF_FFFF_FFED,
        0xFFFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_FFFF_FFFF,
        0x7FFF_FFFF_FFFF_FFFF,
    ])
}

/// The group generator.
pub fn generator() -> U256 {
    U256::from_u64(5)
}

/// `p − 1`, used as the exponent modulus for Schnorr signatures.
pub fn group_order() -> U256 {
    group_prime().overflowing_sub(U256::ONE).0
}

/// A Diffie–Hellman keypair: secret exponent and public element `g^x`.
#[derive(Clone)]
pub struct DhKeyPair {
    secret: U256,
    /// Public element `g^secret mod p`.
    pub public: U256,
}

impl core::fmt::Debug for DhKeyPair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DhKeyPair")
            .field("secret", &"<redacted>")
            .field("public", &self.public)
            .finish()
    }
}

impl DhKeyPair {
    /// Derives a keypair deterministically from 32 bytes of seed entropy.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let mut h = Sha256::new();
        h.update(b"secddr-dh-keygen");
        h.update(seed);
        let digest = h.finalize();
        let mut secret = U256::from_le_bytes(&digest);
        // Keep the exponent in [2, p-2].
        let p = group_prime();
        secret = secret.mul_mod(U256::ONE, &p);
        if secret.is_zero() || secret == U256::ONE {
            secret = U256::from_u64(2);
        }
        let public = generator().pow_mod(&secret, &p);
        Self { secret, public }
    }

    /// Computes the shared secret `peer_public ^ secret mod p`.
    pub fn shared_secret(&self, peer_public: &U256) -> U256 {
        peer_public.pow_mod(&self.secret, &group_prime())
    }

    /// Derives a 16-byte symmetric transaction key from the shared secret
    /// and the two public transcripts (binding the key to the exchange).
    pub fn derive_kt(shared: &U256, transcript_a: &U256, transcript_b: &U256) -> [u8; 16] {
        let mut h = Sha256::new();
        h.update(b"secddr-kt");
        h.update(&shared.to_le_bytes());
        h.update(&transcript_a.to_le_bytes());
        h.update(&transcript_b.to_le_bytes());
        let d = h.finalize();
        d[..16].try_into().expect("16 bytes")
    }
}

/// A Schnorr signature `(r, s)` over the DH group, used for endorsement-key
/// signing of key-exchange messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Commitment `g^k`.
    pub r: U256,
    /// Response `k − x·e mod (p−1)`.
    pub s: U256,
}

/// Signs `msg` with the secret key of `keypair` (deterministic nonce).
pub fn sign(keypair: &DhKeyPair, msg: &[u8]) -> Signature {
    let p = group_prime();
    let q = group_order();
    // Deterministic nonce k = H(secret || msg) mod q, never zero.
    let mut h = Sha256::new();
    h.update(b"secddr-schnorr-nonce");
    h.update(&keypair.secret.to_le_bytes());
    h.update(msg);
    let mut k = U256::from_le_bytes(&h.finalize()).mul_mod(U256::ONE, &q);
    if k.is_zero() {
        k = U256::from_u64(1);
    }
    let r = generator().pow_mod(&k, &p);
    let e = challenge(&r, msg);
    // s = k - x*e mod q
    let xe = keypair.secret.mul_mod(e, &q);
    let s = k.sub_mod(xe, &q);
    Signature { r, s }
}

/// Verifies a signature against `public = g^x`.
pub fn verify(public: &U256, msg: &[u8], sig: &Signature) -> bool {
    let p = group_prime();
    let e = challenge(&sig.r, msg);
    // g^s * y^e ?= r
    let gs = generator().pow_mod(&sig.s, &p);
    let ye = public.pow_mod(&e, &p);
    gs.mul_mod(ye, &p) == sig.r
}

fn challenge(r: &U256, msg: &[u8]) -> U256 {
    let mut h = Sha256::new();
    h.update(b"secddr-schnorr-challenge");
    h.update(&r.to_le_bytes());
    h.update(msg);
    U256::from_le_bytes(&h.finalize()).mul_mod(U256::ONE, &group_order())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u256_add_sub_roundtrip() {
        let m = group_prime();
        let a = U256::from_u64(123_456);
        let b = U256::from_u64(654_321);
        let s = a.add_mod(b, &m);
        assert_eq!(s.sub_mod(b, &m), a);
    }

    #[test]
    fn u256_mul_mod_small() {
        let m = U256::from_u64(1_000_003);
        let a = U256::from_u64(999_999);
        let b = U256::from_u64(999_998);
        // 999999*999998 mod 1000003 = ?
        let expected = (999_999u128 * 999_998u128 % 1_000_003u128) as u64;
        assert_eq!(a.mul_mod(b, &m), U256::from_u64(expected));
    }

    #[test]
    fn pow_mod_fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p and a not divisible by p.
        let p = group_prime();
        let a = U256::from_u64(123_456_789);
        assert_eq!(a.pow_mod(&group_order(), &p), U256::ONE);
    }

    #[test]
    fn pow_mod_edge_cases() {
        let p = group_prime();
        assert_eq!(U256::from_u64(7).pow_mod(&U256::ZERO, &p), U256::ONE);
        assert_eq!(U256::from_u64(7).pow_mod(&U256::ONE, &p), U256::from_u64(7));
        assert_eq!(
            U256::from_u64(7).pow_mod(&U256::from_u64(2), &p),
            U256::from_u64(49)
        );
        assert_eq!(
            U256::from_u64(7).pow_mod(&U256::ONE, &U256::ONE),
            U256::ZERO
        );
    }

    #[test]
    fn bytes_roundtrip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_le_bytes(&v.to_le_bytes()), v);
    }

    #[test]
    fn dh_agreement() {
        let a = DhKeyPair::from_seed(&[1u8; 32]);
        let b = DhKeyPair::from_seed(&[2u8; 32]);
        let s_ab = a.shared_secret(&b.public);
        let s_ba = b.shared_secret(&a.public);
        assert_eq!(s_ab, s_ba);
        assert!(!s_ab.is_zero());
    }

    #[test]
    fn dh_distinct_peers_distinct_secrets() {
        let a = DhKeyPair::from_seed(&[1u8; 32]);
        let b = DhKeyPair::from_seed(&[2u8; 32]);
        let c = DhKeyPair::from_seed(&[3u8; 32]);
        assert_ne!(a.shared_secret(&b.public), a.shared_secret(&c.public));
    }

    #[test]
    fn kt_derivation_binds_transcript() {
        let a = DhKeyPair::from_seed(&[1u8; 32]);
        let b = DhKeyPair::from_seed(&[2u8; 32]);
        let s = a.shared_secret(&b.public);
        let k1 = DhKeyPair::derive_kt(&s, &a.public, &b.public);
        let k2 = DhKeyPair::derive_kt(&s, &b.public, &a.public);
        assert_ne!(k1, k2);
    }

    #[test]
    fn schnorr_sign_verify() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let sig = sign(&kp, b"key exchange message");
        assert!(verify(&kp.public, b"key exchange message", &sig));
    }

    #[test]
    fn schnorr_rejects_wrong_message() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let sig = sign(&kp, b"key exchange message");
        assert!(!verify(&kp.public, b"tampered message", &sig));
    }

    #[test]
    fn schnorr_rejects_wrong_key() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let other = DhKeyPair::from_seed(&[8u8; 32]);
        let sig = sign(&kp, b"msg");
        assert!(!verify(&other.public, b"msg", &sig));
    }

    #[test]
    fn schnorr_rejects_tampered_signature() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        let mut sig = sign(&kp, b"msg");
        sig.s = sig.s.add_mod(U256::ONE, &group_order());
        assert!(!verify(&kp.public, b"msg", &sig));
    }

    #[test]
    fn debug_redacts_secret() {
        let kp = DhKeyPair::from_seed(&[7u8; 32]);
        assert!(format!("{kp:?}").contains("redacted"));
    }
}
