//! Keyed format-preserving permutation over address spaces (a balanced
//! Feistel network with AES-based round functions).
//!
//! The paper's future-work extension (Section VIII) encrypts the address
//! and command buses with the on-DIMM encryption units for traffic
//! obliviousness. A format-preserving permutation is the right primitive:
//! the DDR protocol still carries a *valid* address of the same width, but
//! its relationship to the logical address is hidden from a bus observer.
//! Four Feistel rounds with a PRF give a secure PRP over the domain.

use crate::aes::Aes128;

/// A keyed permutation over `2^bits`-sized address spaces.
#[derive(Debug, Clone)]
pub struct FeistelPermutation {
    aes: Aes128,
    half_bits: u32,
    rounds: u32,
}

impl FeistelPermutation {
    /// Builds a permutation over `bits`-wide values (must be even and at
    /// most 62) keyed by `key`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is odd, zero, or above 62.
    pub fn new(key: &Aes128, bits: u32) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(2) && bits <= 62,
            "bits must be even, 2..=62"
        );
        Self {
            aes: key.clone(),
            half_bits: bits / 2,
            rounds: 4,
        }
    }

    fn round(&self, round: u32, half: u64) -> u64 {
        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&half.to_le_bytes());
        block[8] = round as u8;
        block[9] = 0xF5; // domain separation from other AES uses of the key
        let out = self.aes.encrypt_block(&block);
        u64::from_le_bytes(out[0..8].try_into().expect("8 bytes")) & ((1 << self.half_bits) - 1)
    }

    /// Permutes `value` (must fit in the configured width).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the domain.
    pub fn permute(&self, value: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        assert!(value >> (2 * self.half_bits) == 0, "value out of domain");
        let mut left = value >> self.half_bits;
        let mut right = value & mask;
        for r in 0..self.rounds {
            let new_left = right;
            let new_right = left ^ self.round(r, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    /// Inverts [`Self::permute`].
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the domain.
    pub fn invert(&self, value: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        assert!(value >> (2 * self.half_bits) == 0, "value out of domain");
        let mut left = value >> self.half_bits;
        let mut right = value & mask;
        for r in (0..self.rounds).rev() {
            let new_right = left;
            let new_left = right ^ self.round(r, left);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm(bits: u32) -> FeistelPermutation {
        FeistelPermutation::new(&Aes128::new(&[0x44; 16]), bits)
    }

    #[test]
    fn permute_invert_roundtrip() {
        let p = perm(32);
        for v in [0u64, 1, 0xFFFF, 0xFFFF_FFFF, 0x1234_5678] {
            assert_eq!(p.invert(p.permute(v)), v, "{v:#x}");
        }
    }

    #[test]
    fn is_a_permutation_on_small_domain() {
        let p = perm(8); // 256 values
        let mut seen = std::collections::HashSet::new();
        for v in 0..256u64 {
            let out = p.permute(v);
            assert!(out < 256);
            assert!(seen.insert(out), "collision at {v}");
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn different_keys_give_different_permutations() {
        let a = FeistelPermutation::new(&Aes128::new(&[1; 16]), 16);
        let b = FeistelPermutation::new(&Aes128::new(&[2; 16]), 16);
        let differing = (0..100u64)
            .filter(|v| a.permute(*v) != b.permute(*v))
            .count();
        assert!(differing > 90);
    }

    #[test]
    fn sequential_inputs_scatter() {
        // Obliviousness: consecutive logical addresses must not map to
        // consecutive physical addresses.
        let p = perm(32);
        let adjacent_pairs = (0..1000u64)
            .filter(|v| {
                let a = p.permute(*v);
                let b = p.permute(v + 1);
                a.abs_diff(b) == 1
            })
            .count();
        assert!(
            adjacent_pairs < 5,
            "{adjacent_pairs} sequential pairs leaked"
        );
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_rejected() {
        let p = perm(16);
        let _ = p.permute(1 << 16);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_width_rejected() {
        let _ = perm(15);
    }
}
