//! AES-XTS tweaked block encryption for memory lines.
//!
//! Intel TME and AMD SEV encrypt whole memory with an XEX-style tweakable
//! mode (AES-XTS) instead of counter mode, trading the temporal-uniqueness
//! guarantee for zero counter storage and zero extra memory traffic. SecDDR
//! is compatible with both; the paper's `SecDDR+XTS` configuration is its
//! best performer. This module implements XTS-AES-128 over block-aligned
//! units (memory lines are 64 bytes, so ciphertext stealing is never
//! needed; [`XtsAes128::encrypt_units`] rejects partial blocks).

use crate::aes::Aes128;

/// XTS-AES-128: two independent AES-128 keys, one for data and one for the
/// tweak, with GF(2^128) doubling between consecutive blocks of a unit.
///
/// ```
/// use secddr_crypto::xts::XtsAes128;
/// let xts = XtsAes128::new(&[1u8; 16], &[2u8; 16]);
/// let mut line = [0xEE_u8; 64];
/// let orig = line;
/// xts.encrypt_units(0x40, &mut line);
/// assert_ne!(line, orig);
/// xts.decrypt_units(0x40, &mut line);
/// assert_eq!(line, orig);
/// ```
#[derive(Debug, Clone)]
pub struct XtsAes128 {
    data_key: Aes128,
    tweak_key: Aes128,
}

/// Doubles a 16-byte value in GF(2^128) with the XTS primitive polynomial
/// x^128 + x^7 + x^2 + x + 1 (little-endian byte order per IEEE 1619).
#[inline]
fn gf_double(t: &mut [u8; 16]) {
    let mut carry = 0u8;
    for b in t.iter_mut() {
        let new_carry = *b >> 7;
        *b = (*b << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        t[0] ^= 0x87;
    }
}

impl XtsAes128 {
    /// Creates an XTS cipher from the data key and the tweak key.
    pub fn new(data_key: &[u8; 16], tweak_key: &[u8; 16]) -> Self {
        Self {
            data_key: Aes128::new(data_key),
            tweak_key: Aes128::new(tweak_key),
        }
    }

    fn initial_tweak(&self, unit: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[0..8].copy_from_slice(&unit.to_le_bytes());
        self.tweak_key.encrypt_block(&t)
    }

    /// Encrypts a block-aligned data unit in place. `unit` is the tweak
    /// (for memory encryption: the line's physical address).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is zero or not a multiple of 16 — memory
    /// lines are always block-aligned, so ciphertext stealing is
    /// deliberately unsupported.
    pub fn encrypt_units(&self, unit: u64, data: &mut [u8]) {
        self.process(unit, data, true);
    }

    /// Decrypts a block-aligned data unit in place (inverse of
    /// [`Self::encrypt_units`]).
    ///
    /// # Panics
    ///
    /// Panics under the same alignment conditions as
    /// [`Self::encrypt_units`].
    pub fn decrypt_units(&self, unit: u64, data: &mut [u8]) {
        self.process(unit, data, false);
    }

    fn process(&self, unit: u64, data: &mut [u8], encrypt: bool) {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(16),
            "XTS units must be a positive multiple of 16 bytes"
        );
        let mut tweak = self.initial_tweak(unit);
        for chunk in data.chunks_exact_mut(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            for (b, t) in block.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            let mut out = if encrypt {
                self.data_key.encrypt_block(&block)
            } else {
                self.data_key.decrypt_block(&block)
            };
            for (b, t) in out.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            chunk.copy_from_slice(&out);
            gf_double(&mut tweak);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xts() -> XtsAes128 {
        XtsAes128::new(&[0x11; 16], &[0x22; 16])
    }

    #[test]
    fn ieee1619_vector_1() {
        // IEEE 1619-2007 XTS-AES-128 Vector 1: all-zero keys, unit 0,
        // 32 zero bytes.
        let xts = XtsAes128::new(&[0u8; 16], &[0u8; 16]);
        let mut data = [0u8; 32];
        xts.encrypt_units(0, &mut data);
        let expected: [u8; 32] = [
            0x91, 0x7c, 0xf6, 0x9e, 0xbd, 0x68, 0xb2, 0xec, 0x9b, 0x9f, 0xe9, 0xa3, 0xea, 0xdd,
            0xa6, 0x92, 0xcd, 0x43, 0xd2, 0xf5, 0x95, 0x98, 0xed, 0x85, 0x8c, 0x02, 0xc2, 0x65,
            0x2f, 0xbf, 0x92, 0x2e,
        ];
        assert_eq!(data, expected);
    }

    #[test]
    fn roundtrip_64_byte_line() {
        let xts = xts();
        let mut line: [u8; 64] = core::array::from_fn(|i| i as u8);
        let orig = line;
        xts.encrypt_units(0x7777, &mut line);
        assert_ne!(line, orig);
        xts.decrypt_units(0x7777, &mut line);
        assert_eq!(line, orig);
    }

    #[test]
    fn spatial_variation() {
        let xts = xts();
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        xts.encrypt_units(1, &mut a);
        xts.encrypt_units(2, &mut b);
        assert_ne!(a, b, "same plaintext at different addresses must differ");
    }

    #[test]
    fn no_temporal_variation() {
        // The weakness the paper notes (Section IV-B): same plaintext at the
        // same address always encrypts identically under XTS.
        let xts = xts();
        let mut a = [0x33u8; 64];
        let mut b = [0x33u8; 64];
        xts.encrypt_units(9, &mut a);
        xts.encrypt_units(9, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn blocks_within_unit_get_distinct_tweaks() {
        let xts = xts();
        let mut data = [0u8; 32];
        xts.encrypt_units(5, &mut data);
        assert_ne!(data[0..16], data[16..32]);
    }

    #[test]
    fn gf_double_known_carry() {
        let mut t = [0u8; 16];
        t[15] = 0x80; // msb set => reduction applies
        gf_double(&mut t);
        assert_eq!(t[0], 0x87);
        assert_eq!(t[15], 0x00);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn partial_block_rejected() {
        let xts = xts();
        let mut data = [0u8; 24];
        xts.encrypt_units(0, &mut data);
    }
}
