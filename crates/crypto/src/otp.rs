//! E-MAC one-time pads and channel transaction counters
//! (Sections III-A/III-B of the paper).
//!
//! SecDDR never sends a plaintext MAC over the bus. Each transfer XORs the
//! MAC with a one-time pad derived from the shared transaction key `Kt` and
//! the per-rank transaction counter state:
//!
//! * Reads consume **even** counter values, writes **odd** ones (the
//!   paper's defence against a write command being converted into a read).
//! * Write pads additionally fold in the full write address, so that
//!   corrupting the address bus scrambles the encrypted eWCRC — the
//!   non-cryptographic CRC alone could otherwise be defeated by targeted
//!   bit flips.
//!
//! We realize the even/odd rule as two interleaved counters — the read
//! counter ranges over even values, the write counter over odd values, and
//! **both** are bound into every pad. This meets every detection outcome
//! stated in the paper, permanently (no transient window):
//!
//! * a dropped write desynchronizes the write counter, so *all* following
//!   reads fail verification (Section III-B);
//! * a write→read command conversion advances the read counter on the DIMM
//!   and the write counter on the processor, so the two ends diverge in
//!   both components and never resynchronize;
//! * replayed `(data, E-MAC)` tuples decrypt under a stale pad and fail.
//!
//! (A single skip-to-parity counter, the most literal reading of the
//! paper's one-sentence description, resynchronizes after a conversion
//! followed by a read; the dual-counter realization closes that hole while
//! preserving the stated even/odd structure. See DESIGN.md.)

use crate::aes::Aes128;

/// A one-time pad for one bus transaction: 64 bits for the E-MAC and 16
/// bits for the encrypted eWCRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmacPad {
    mac_pad: u64,
    crc_pad: u16,
}

const WRITE_TWEAK_MARKER: u64 = 0x9E37_79B9_7F4A_7C15;

impl EmacPad {
    /// Pad for a read transaction from the counter pair `(ct_read,
    /// ct_write)`.
    ///
    /// # Panics
    ///
    /// Panics if `ct_read` is odd or `ct_write` even — the protocol keeps
    /// reads on even and writes on odd values.
    pub fn derive_read(kt: &Aes128, ct_read: u64, ct_write: u64) -> Self {
        assert!(
            ct_read.is_multiple_of(2),
            "read transactions use even counter values"
        );
        assert!(ct_write % 2 == 1, "write counter ranges over odd values");
        Self::base(kt, ct_read, ct_write)
    }

    /// Pad for a write transaction bound to `write_addr`.
    ///
    /// # Panics
    ///
    /// Panics under the same parity conditions as [`Self::derive_read`].
    pub fn derive_write(kt: &Aes128, ct_read: u64, ct_write: u64, write_addr: u64) -> Self {
        assert!(
            ct_read.is_multiple_of(2),
            "read counter ranges over even values"
        );
        assert!(
            ct_write % 2 == 1,
            "write transactions use odd counter values"
        );
        let base = Self::base(kt, ct_read, ct_write);
        // Second PRP invocation binds the address; XORing two AES outputs
        // keeps the pad pseudorandom for any (counters, address) pair.
        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&write_addr.to_le_bytes());
        block[8..16].copy_from_slice(&WRITE_TWEAK_MARKER.to_le_bytes());
        let tweak = kt.encrypt_block(&block);
        Self {
            mac_pad: base.mac_pad ^ u64::from_le_bytes(tweak[0..8].try_into().expect("8 bytes")),
            crc_pad: base.crc_pad ^ u16::from_le_bytes(tweak[8..10].try_into().expect("2 bytes")),
        }
    }

    fn base(kt: &Aes128, ct_read: u64, ct_write: u64) -> Self {
        let mut block = [0u8; 16];
        block[0..8].copy_from_slice(&ct_read.to_le_bytes());
        block[8..16].copy_from_slice(&ct_write.to_le_bytes());
        let pad = kt.encrypt_block(&block);
        Self {
            mac_pad: u64::from_le_bytes(pad[0..8].try_into().expect("8 bytes")),
            crc_pad: u16::from_le_bytes(pad[8..10].try_into().expect("2 bytes")),
        }
    }

    /// Encrypts (or decrypts — XOR is an involution) a 64-bit MAC.
    #[inline]
    pub fn apply(&self, mac: u64) -> u64 {
        mac ^ self.mac_pad
    }

    /// Encrypts (or decrypts) a 16-bit eWCRC.
    #[inline]
    pub fn apply_crc(&self, crc: u16) -> u16 {
        crc ^ self.crc_pad
    }
}

/// Per-rank transaction counter state with the read/write parity
/// discipline.
///
/// Both the memory controller and the ECC chip hold one of these per rank;
/// they advance in lockstep as long as no transaction is dropped, redirected
/// or type-converted. Any divergence makes every subsequent pad differ and
/// is caught at the next MAC verification on the processor.
///
/// ```
/// use secddr_crypto::aes::Aes128;
/// use secddr_crypto::otp::TransactionCounter;
///
/// let kt = Aes128::new(&[1u8; 16]);
/// let mut cpu = TransactionCounter::new(100);
/// let mut dimm = TransactionCounter::new(100);
/// let p1 = cpu.read_pad(&kt);
/// let p2 = dimm.read_pad(&kt);
/// assert_eq!(p1, p2); // lockstep
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransactionCounter {
    ct_read: u64,
    ct_write: u64,
}

impl TransactionCounter {
    /// Starts the counter pair from `initial` (the boot value the
    /// processor picks during attestation): reads from the next even value,
    /// writes from the next odd value.
    pub fn new(initial: u64) -> Self {
        let even = initial + (initial % 2);
        Self {
            ct_read: even,
            ct_write: even + 1,
        }
    }

    /// Derives the pad for the next read transaction and advances the read
    /// counter.
    pub fn read_pad(&mut self, kt: &Aes128) -> EmacPad {
        let pad = EmacPad::derive_read(kt, self.ct_read, self.ct_write);
        self.ct_read += 2;
        pad
    }

    /// Derives the pad for the next write transaction (bound to
    /// `write_addr`) and advances the write counter.
    pub fn write_pad(&mut self, kt: &Aes128, write_addr: u64) -> EmacPad {
        let pad = EmacPad::derive_write(kt, self.ct_read, self.ct_write, write_addr);
        self.ct_write += 2;
        pad
    }

    /// The `(read, write)` counter pair, for divergence diagnostics and
    /// DIMM-substitution checks.
    pub fn state(&self) -> (u64, u64) {
        (self.ct_read, self.ct_write)
    }

    /// Sum of transactions consumed so far relative to `initial` — the
    /// quantity the paper's 64-bit overflow analysis reasons about.
    pub fn transactions(&self, initial: u64) -> u64 {
        let even = initial + (initial % 2);
        (self.ct_read - even) / 2 + (self.ct_write - (even + 1)) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kt() -> Aes128 {
        Aes128::new(&[0x5C; 16])
    }

    #[test]
    fn xor_is_involution() {
        let pad = EmacPad::derive_read(&kt(), 100, 101);
        let mac = 0xDEAD_BEEF_CAFE_F00D;
        assert_eq!(pad.apply(pad.apply(mac)), mac);
        let crc = 0xABCD;
        assert_eq!(pad.apply_crc(pad.apply_crc(crc)), crc);
    }

    #[test]
    fn pads_are_temporally_unique() {
        let k = kt();
        assert_ne!(
            EmacPad::derive_read(&k, 0, 1),
            EmacPad::derive_read(&k, 2, 1),
            "fresh read counter => fresh pad"
        );
        assert_ne!(
            EmacPad::derive_read(&k, 0, 1),
            EmacPad::derive_read(&k, 0, 3),
            "fresh write counter => fresh read pad (dropped-write detection)"
        );
    }

    #[test]
    fn write_pad_binds_address() {
        let k = kt();
        assert_ne!(
            EmacPad::derive_write(&k, 0, 1, 0x1000),
            EmacPad::derive_write(&k, 0, 1, 0x1040),
            "corrupting the address must change the pad"
        );
    }

    #[test]
    fn read_and_write_pads_differ_for_same_state() {
        let k = kt();
        let r = EmacPad::derive_read(&k, 2, 3);
        let w = EmacPad::derive_write(&k, 2, 3, 0);
        assert_ne!(r, w);
    }

    #[test]
    #[should_panic(expected = "even counter")]
    fn read_pad_rejects_odd_read_counter() {
        let _ = EmacPad::derive_read(&kt(), 3, 5);
    }

    #[test]
    #[should_panic(expected = "odd counter")]
    fn write_pad_rejects_even_write_counter() {
        let _ = EmacPad::derive_write(&kt(), 2, 4, 0);
    }

    #[test]
    fn counter_parity_discipline() {
        let mut ct = TransactionCounter::new(0);
        let (r0, w0) = ct.state();
        assert_eq!(r0 % 2, 0);
        assert_eq!(w0 % 2, 1);
        let k = kt();
        let _ = ct.read_pad(&k);
        let _ = ct.write_pad(&k, 0);
        let (r1, w1) = ct.state();
        assert_eq!(r1, r0 + 2);
        assert_eq!(w1, w0 + 2);
    }

    #[test]
    fn odd_initial_value_rounds_up() {
        let ct = TransactionCounter::new(7);
        assert_eq!(ct.state(), (8, 9));
    }

    #[test]
    fn lockstep_counters_produce_identical_pads() {
        let k = kt();
        let mut cpu = TransactionCounter::new(0);
        let mut dimm = TransactionCounter::new(0);
        for i in 0..50u64 {
            if i % 2 == 0 {
                assert_eq!(cpu.read_pad(&k), dimm.read_pad(&k));
            } else {
                assert_eq!(cpu.write_pad(&k, i * 64), dimm.write_pad(&k, i * 64));
            }
        }
        assert_eq!(cpu.state(), dimm.state());
    }

    #[test]
    fn dropped_write_desynchronizes_all_future_reads() {
        let k = kt();
        let mut cpu = TransactionCounter::new(0);
        let mut dimm = TransactionCounter::new(0);
        let _ = cpu.write_pad(&k, 0x40); // write dropped before the DIMM
        for _ in 0..10 {
            assert_ne!(
                cpu.read_pad(&k),
                dimm.read_pad(&k),
                "paper claim: all following reads fail verification"
            );
        }
    }

    #[test]
    fn command_conversion_diverges_permanently() {
        let k = kt();
        let mut cpu = TransactionCounter::new(0);
        let mut dimm = TransactionCounter::new(0);
        // Attacker converts a write into a read: the processor consumed a
        // write slot, the DIMM a read slot.
        let _ = cpu.write_pad(&k, 0x40);
        let _ = dimm.read_pad(&k);
        // No subsequent sequence of honest transactions resynchronizes.
        for i in 0..10u64 {
            if i % 2 == 0 {
                assert_ne!(cpu.read_pad(&k), dimm.read_pad(&k));
            } else {
                assert_ne!(cpu.write_pad(&k, 0), dimm.write_pad(&k, 0));
            }
        }
        assert_ne!(cpu.state(), dimm.state());
    }

    #[test]
    fn transactions_counts_consumed_slots() {
        let k = kt();
        let mut ct = TransactionCounter::new(10);
        let _ = ct.read_pad(&k);
        let _ = ct.write_pad(&k, 0);
        let _ = ct.read_pad(&k);
        assert_eq!(ct.transactions(10), 3);
    }

    #[test]
    fn stale_counter_state_mismatches_fresh_one() {
        // DIMM-substitution: the preserved (old) counter state yields pads
        // that differ from the live processor's.
        let k = kt();
        let mut cpu = TransactionCounter::new(0);
        let mut dimm = TransactionCounter::new(0);
        let snapshot = dimm; // attacker freezes the DIMM here
        for _ in 0..5 {
            let _ = cpu.write_pad(&k, 0);
            let _ = dimm.write_pad(&k, 0);
        }
        let mut stale = snapshot; // attacker re-plugs the frozen DIMM
        assert_ne!(cpu.read_pad(&k), stale.read_pad(&k));
    }
}
