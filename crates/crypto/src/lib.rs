//! Cryptographic substrate for the SecDDR reproduction.
//!
//! SecDDR (DSN 2023) protects the DDR interface by encrypting per-line MACs
//! with one-time pads derived from synchronized transaction counters, and by
//! encrypting an extended write CRC (eWCRC) that binds the write address to
//! the data. This crate provides every primitive that protocol needs,
//! implemented from scratch so the artifact is self-contained:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197), the unit the paper budgets
//!   on the ECC chip.
//! * [`ctr`] — counter-mode keystream / one-time-pad generation.
//! * [`xts`] — AES-XTS (XEX-based tweaked codebook with ciphertext stealing
//!   omitted: memory lines are block-aligned), the encryption mode used by
//!   Intel TME / AMD SEV that SecDDR is compatible with.
//! * [`mac`] — AES-CMAC (RFC 4493) used to build the per-line
//!   `MAC = H_k(data, addr)`.
//! * [`otp`] — E-MAC one-time pads: `OTPt` from `(Kt, Ct)` for reads and the
//!   address-bound `OTPw` for writes (Section III-B of the paper).
//! * [`crc`] — CRC-16 write CRC and the All-Inclusive-ECC-style eWCRC that
//!   mixes rank/bank/row/column address bits into the checked message.
//! * [`sha256`] — SHA-256 (FIPS-180-4) for attestation signatures.
//! * [`dh`] — finite-field Diffie–Hellman over the 2^255−19 prime plus a
//!   Schnorr-style signature, modelling the endorsement-key attestation
//!   exchange of Section III-F.
//! * [`power`] — the analytic area/power model behind Table II.
//!
//! # Example
//!
//! Generate a line MAC, encrypt it into an E-MAC for the bus, and decrypt it
//! on the other side:
//!
//! ```
//! use secddr_crypto::{aes::Aes128, mac::Cmac, otp::TransactionCounter};
//!
//! let kt = Aes128::new(&[0x42; 16]);
//! let mac_key = Aes128::new(&[0x17; 16]);
//! let line = [0xAB_u8; 64];
//! let mac = Cmac::new(mac_key).line_mac(&line, 0xDEAD_BEE0);
//!
//! // Synchronized per-rank transaction counters on both ends.
//! let mut cpu_ct = TransactionCounter::new(0);
//! let mut dimm_ct = TransactionCounter::new(0);
//! let emac = cpu_ct.read_pad(&kt).apply(mac); // what travels on the ECC lanes
//! assert_ne!(emac, mac);
//! assert_eq!(dimm_ct.read_pad(&kt).apply(emac), mac); // lockstep pad round-trips
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod crc;
pub mod ctr;
pub mod dh;
pub mod feistel;
pub mod mac;
pub mod otp;
pub mod power;
pub mod sha256;
pub mod xts;

pub use aes::Aes128;
pub use crc::{crc16, Ewcrc};
pub use mac::Cmac;
pub use otp::EmacPad;
pub use sha256::Sha256;
