//! Analytic area/power model for SecDDR's on-DRAM security logic (Table II
//! and Section V-B of the paper).
//!
//! The paper budgets the ECC-chip logic from published 45 nm blocks:
//!
//! * AES engine: 0.15 mm², 53 Gb/s at 2.1 GHz (Mathew et al., JSSC'11).
//! * EC scalar multiplier: 0.0209 mm², 74 mW at 3 GHz (Mathew et al.,
//!   ESSCIRC'10).
//! * SHA-256: 0.0625 mm², 50 mW at 1.4 GHz (Ramanarayanan et al.,
//!   ESSCIRC'10).
//!
//! Power scales linearly with frequency to the 500 MHz DRAM core clock and
//! quadratically with voltage; engine count is rounded up to match the
//! chip's transfer rate. The calibration constant is the x4 DDR4-3200 row of
//! Table II (2 engines, 70.8 mW), giving 35.4 mW per engine at 500 MHz and
//! 1.2 V.

/// AES engine throughput at its native design point (Gb/s at 2.1 GHz).
pub const AES_ENGINE_GBPS_NATIVE: f64 = 53.0;
/// AES engine native clock (GHz).
pub const AES_ENGINE_FREQ_NATIVE_GHZ: f64 = 2.1;
/// DRAM core clock assumed by the paper (GHz).
pub const DRAM_CORE_FREQ_GHZ: f64 = 0.5;
/// Per-engine power at 500 MHz and 1.2 V (mW), calibrated from Table II.
pub const AES_ENGINE_MW_AT_500MHZ: f64 = 35.4;
/// AES engine area at 45 nm (mm²).
pub const AES_ENGINE_AREA_MM2: f64 = 0.15;
/// EC scalar multiplier area (mm²).
pub const EC_MULT_AREA_MM2: f64 = 0.0209;
/// SHA-256 unit area (mm²).
pub const SHA256_AREA_MM2: f64 = 0.0625;

/// One DIMM configuration row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimmPowerConfig {
    /// Human-readable label, e.g. `"x4 4Gb"`.
    pub label: &'static str,
    /// Device data width in bits (4 or 8).
    pub device_width_bits: u32,
    /// Channel transfer rate in MT/s.
    pub transfer_rate_mts: u32,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Power of one DRAM chip (mW) from vendor datasheets.
    pub dram_chip_power_mw: f64,
    /// Power of the whole 16 GB dual-rank LRDIMM (mW).
    pub dimm_power_mw: f64,
    /// SecDDR ECC chips per rank carrying the security logic.
    pub ecc_chips_per_rank: u32,
}

/// The DDR4-3200 x4 4Gb configuration from Table II.
pub const DDR4_X4: DimmPowerConfig = DimmPowerConfig {
    label: "x4 4Gb",
    device_width_bits: 4,
    transfer_rate_mts: 3200,
    vdd: 1.2,
    dram_chip_power_mw: 290.0,
    dimm_power_mw: 13230.0,
    ecc_chips_per_rank: 2,
};

/// The DDR4-3200 x8 8Gb configuration from Table II.
pub const DDR4_X8: DimmPowerConfig = DimmPowerConfig {
    label: "x8 8Gb",
    device_width_bits: 8,
    transfer_rate_mts: 3200,
    vdd: 1.2,
    dram_chip_power_mw: 351.9,
    dimm_power_mw: 9120.0,
    ecc_chips_per_rank: 1,
};

/// The DDR5-8800 x4 configuration discussed in Section V-B (1.1 V, ~13%
/// lower DIMM power than DDR4).
pub const DDR5_X4: DimmPowerConfig = DimmPowerConfig {
    label: "x4 DDR5-8800",
    device_width_bits: 4,
    transfer_rate_mts: 8800,
    vdd: 1.1,
    dram_chip_power_mw: 290.0 * 0.87,
    dimm_power_mw: 13230.0 * 0.87,
    ecc_chips_per_rank: 2,
};

/// Computed overhead figures for one configuration (one Table II column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerOverhead {
    /// AES engines required per ECC chip.
    pub aes_units_per_ecc_chip: u32,
    /// AES power per ECC chip (mW).
    pub aes_power_per_chip_mw: f64,
    /// Per-rank power overhead as a fraction (e.g. 0.021 = 2.1%).
    pub overhead_per_rank: f64,
    /// Total security-logic area per ECC chip (mm², 45 nm).
    pub area_mm2: f64,
}

/// Per-engine AES throughput when clocked at the DRAM core frequency.
pub fn aes_engine_gbps_at_dram_clock() -> f64 {
    AES_ENGINE_GBPS_NATIVE * (DRAM_CORE_FREQ_GHZ / AES_ENGINE_FREQ_NATIVE_GHZ)
}

/// Required per-chip encryption throughput in Gb/s: the device's full data
/// rate (the ECC chip must pad every beat it transfers).
pub fn required_chip_gbps(cfg: &DimmPowerConfig) -> f64 {
    f64::from(cfg.device_width_bits) * f64::from(cfg.transfer_rate_mts) / 1000.0
}

/// Evaluates the Table II model for one configuration.
pub fn evaluate(cfg: &DimmPowerConfig) -> PowerOverhead {
    let per_engine = aes_engine_gbps_at_dram_clock();
    let units = (required_chip_gbps(cfg) / per_engine).ceil() as u32;
    // Voltage scaling relative to the 1.2 V calibration point.
    let vscale = (cfg.vdd / 1.2).powi(2);
    let aes_power = f64::from(units) * AES_ENGINE_MW_AT_500MHZ * vscale;
    let rank_power = cfg.dimm_power_mw / 2.0; // dual-rank DIMM
    let overhead = f64::from(cfg.ecc_chips_per_rank) * aes_power / rank_power;
    let area = f64::from(units) * AES_ENGINE_AREA_MM2 + EC_MULT_AREA_MM2 + SHA256_AREA_MM2;
    PowerOverhead {
        aes_units_per_ecc_chip: units,
        aes_power_per_chip_mw: aes_power,
        overhead_per_rank: overhead,
        area_mm2: area,
    }
}

/// Attestation-unit power at the DRAM clock (Section V-B prose): the EC
/// multiplier and SHA-256 blocks scaled linearly from their native clocks.
/// Returns `(ec_mult_mw, sha256_mw)`.
pub fn attestation_power_mw() -> (f64, f64) {
    let ec = 74.0 * (DRAM_CORE_FREQ_GHZ / 3.0) * 1.15; // 1.1 V -> operating point
    let sha = 50.0 * (DRAM_CORE_FREQ_GHZ / 1.4) * 1.18;
    (ec, sha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x4_matches_table_ii() {
        let r = evaluate(&DDR4_X4);
        assert_eq!(r.aes_units_per_ecc_chip, 2);
        assert!((r.aes_power_per_chip_mw - 70.8).abs() < 0.05, "{r:?}");
        assert!((r.overhead_per_rank - 0.021).abs() < 0.002, "{r:?}");
    }

    #[test]
    fn x8_matches_table_ii() {
        let r = evaluate(&DDR4_X8);
        assert_eq!(r.aes_units_per_ecc_chip, 3);
        assert!((r.aes_power_per_chip_mw - 106.3).abs() < 0.15, "{r:?}");
        assert!((r.overhead_per_rank - 0.023).abs() < 0.002, "{r:?}");
    }

    #[test]
    fn ddr5_matches_section_vb() {
        let r = evaluate(&DDR5_X4);
        assert_eq!(r.aes_units_per_ecc_chip, 3, "35.2 Gb/s needs 3 engines");
        assert!((r.aes_power_per_chip_mw - 89.3).abs() < 0.3, "{r:?}");
        assert!(r.overhead_per_rank < 0.05, "paper: below 5%, got {r:?}");
    }

    #[test]
    fn area_stays_under_paper_budget() {
        for cfg in [DDR4_X4, DDR4_X8, DDR5_X4] {
            let r = evaluate(&cfg);
            assert!(r.area_mm2 < 1.5, "paper budget: <1.5mm², got {r:?}");
        }
    }

    #[test]
    fn engine_throughput_at_dram_clock() {
        let g = aes_engine_gbps_at_dram_clock();
        assert!((g - 12.619).abs() < 0.01);
    }

    #[test]
    fn required_rates() {
        assert!((required_chip_gbps(&DDR4_X4) - 12.8).abs() < 1e-9);
        assert!((required_chip_gbps(&DDR4_X8) - 25.6).abs() < 1e-9);
        assert!((required_chip_gbps(&DDR5_X4) - 35.2).abs() < 1e-9);
    }

    #[test]
    fn attestation_power_is_small() {
        let (ec, sha) = attestation_power_mw();
        // Paper prose: 14.2 mW and 21 mW.
        assert!((ec - 14.2).abs() < 0.3, "{ec}");
        assert!((sha - 21.0).abs() < 0.3, "{sha}");
    }
}
