//! Multi-core front-end: N OOO cores sharing the LLC and memory engine
//! behind one next-event scheduler.
//!
//! The paper evaluates SecDDR in 4-core rate mode; this crate is that
//! front-end. It composes the per-core state machine extracted from the
//! single-core system ([`cpu_model::exec::CoreEngine`]) with one shared
//! LLC and one shared [`cpu_model::MemoryBackend`]:
//!
//! * [`MultiCoreSystem`] — N cores interleaved by next-event time: a
//!   min-heap over each sleeping core's memoized wake-up bound steps
//!   only due cores, and jumps the global clock when every core is
//!   asleep — the shard scheduler of `secddr-channels`, one layer up.
//!   Results are bit-identical to per-cycle lock-step, and
//!   `MultiCoreSystem` with one core is observationally identical to the
//!   bare `CpuSystem` (pinned by `tests/multicore_differential.rs`).
//! * [`CoreTrace`] / [`AddressSpace`] — rate-mode trace sharing: N cores
//!   iterate one reference-counted trace, each relocated into its own
//!   window of the backend's data span so copies cannot alias in the
//!   shared LLC or the engine metadata.
//! * [`MultiCoreResult`] — per-core [`cpu_model::SimResult`]s plus the
//!   merged aggregate and the rate-mode metrics (aggregate IPC, weighted
//!   speedup).
//!
//! Cores × channels compose through the one backend seam:
//! `MultiCoreSystem<ShardedEngine>` works unchanged.
//!
//! # Example
//!
//! ```
//! use cpu_model::{CpuConfig, FixedLatencyBackend, TraceOp};
//! use secddr_multicore::{CoreTrace, MultiCoreSystem};
//! use std::sync::Arc;
//!
//! let trace = Arc::new(vec![
//!     TraceOp::Compute(12),
//!     TraceOp::Load(0x1000),
//!     TraceOp::Store(0x2000),
//! ]);
//! let mut sys = MultiCoreSystem::new(4, CpuConfig::default(), FixedLatencyBackend::new(200));
//! let result = sys.run(CoreTrace::rate(&trace, 1 << 32, 4));
//! assert_eq!(result.merged().instructions, 4 * 14);
//! assert!(result.aggregate_ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod series;
mod system;
mod telemetry;
mod trace;

pub use system::{MultiCoreResult, MultiCoreSystem};
pub use telemetry::WakeReasons;
pub use trace::{AddressSpace, CoreTrace};
