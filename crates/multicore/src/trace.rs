//! Shared rate-mode traces and the per-core address disambiguator.
//!
//! The paper evaluates SecDDR in 4-core *rate* mode: every core runs the
//! same benchmark on its own copy of the data. Reproducing that must not
//! cost N trace generations (or N deep clones): [`CoreTrace`] iterates a
//! reference-counted trace shared by all cores and rewrites addresses on
//! the fly through an [`AddressSpace`], which folds each core's accesses
//! into a disjoint window of the backend's data span.

use std::sync::Arc;

use cpu_model::TraceOp;

/// Line size the address windows are aligned to.
const LINE_BYTES: u64 = 64;

/// Per-core address disambiguator: splits a backend data span of
/// `span` bytes into one line-aligned window per core and relocates each
/// core's accesses into its own window (`addr % window + core * window`).
///
/// Folding by `window` preserves a trace's internal structure as long as
/// its regions stay pairwise distinct modulo the window — true for every
/// bundled workload down to 2.5 GiB windows (the SecDDR 10 GiB data span
/// split four ways). The windows are what make rate mode honest: N
/// copies of one trace would otherwise alias in the shared LLC and the
/// engine's metadata, constructively interfering in a way N real
/// processes never could.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    window: u64,
}

impl AddressSpace {
    /// One window per core over a data span of `span` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero or the per-core window rounds below
    /// one cache line.
    #[must_use]
    pub fn windows(span: u64, cores: usize) -> Self {
        assert!(cores >= 1, "at least one core is required");
        let window = (span / cores as u64) & !(LINE_BYTES - 1);
        assert!(
            window >= LINE_BYTES,
            "span {span:#x} too small for {cores} per-core windows"
        );
        Self { window }
    }

    /// The identity disambiguator: every core sees trace addresses
    /// unchanged (cores deliberately share data).
    #[must_use]
    pub fn identity() -> Self {
        Self { window: 0 }
    }

    /// Bytes of address space each core owns (zero for
    /// [`Self::identity`]).
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Relocates `addr` into `core`'s window.
    #[must_use]
    pub fn remap(&self, core: usize, addr: u64) -> u64 {
        if self.window == 0 {
            return addr;
        }
        addr % self.window + core as u64 * self.window
    }

    fn remap_op(&self, core: usize, op: TraceOp) -> TraceOp {
        match op {
            TraceOp::Compute(n) => TraceOp::Compute(n),
            TraceOp::Load(a) => TraceOp::Load(self.remap(core, a)),
            TraceOp::DependentLoad(a) => TraceOp::DependentLoad(self.remap(core, a)),
            TraceOp::Store(a) => TraceOp::Store(self.remap(core, a)),
        }
    }
}

/// One core's view of a shared trace: an iterator over an
/// `Arc<Vec<TraceOp>>` that applies the core's [`AddressSpace`] window
/// to every memory operand. Cloning the iterator (or building N of them
/// with [`CoreTrace::rate`]) shares the underlying trace allocation.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    trace: Arc<Vec<TraceOp>>,
    pos: usize,
    core: usize,
    space: AddressSpace,
}

impl CoreTrace {
    /// `core`'s iterator over `trace` under `space`.
    #[must_use]
    pub fn new(trace: Arc<Vec<TraceOp>>, core: usize, space: AddressSpace) -> Self {
        Self {
            trace,
            pos: 0,
            core,
            space,
        }
    }

    /// Rate mode: `cores` iterators over one shared trace, each
    /// relocated into its own window of `span` bytes. The trace is
    /// shared by reference count — N-core sweeps never regenerate or
    /// deep-clone it.
    #[must_use]
    pub fn rate(trace: &Arc<Vec<TraceOp>>, span: u64, cores: usize) -> Vec<Self> {
        let space = AddressSpace::windows(span, cores);
        (0..cores)
            .map(|core| Self::new(Arc::clone(trace), core, space))
            .collect()
    }

    /// Heterogeneous mix: one (shared) trace per core, each still
    /// relocated into its own window so distinct benchmarks cannot
    /// accidentally alias in the shared LLC or the engine metadata.
    #[must_use]
    pub fn mix(traces: Vec<Arc<Vec<TraceOp>>>, span: u64) -> Vec<Self> {
        let space = AddressSpace::windows(span, traces.len());
        traces
            .into_iter()
            .enumerate()
            .map(|(core, trace)| Self::new(trace, core, space))
            .collect()
    }
}

impl Iterator for CoreTrace {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        let op = *self.trace.get(self.pos)?;
        self.pos += 1;
        Some(self.space.remap_op(self.core, op))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.pos;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_disjoint_and_line_aligned() {
        let space = AddressSpace::windows(10 << 30, 4);
        assert_eq!(space.window() % LINE_BYTES, 0);
        for core in 0..4usize {
            let lo = space.remap(core, 0);
            let hi = space.remap(core, space.window() - 1);
            assert_eq!(lo, core as u64 * space.window());
            assert_eq!(hi, lo + space.window() - 1);
        }
        // Same trace address lands in different windows per core.
        let a = 0x2_0000_0040;
        let per_core: Vec<u64> = (0..4).map(|c| space.remap(c, a)).collect();
        for (i, x) in per_core.iter().enumerate() {
            for y in &per_core[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn remap_preserves_line_offsets() {
        let space = AddressSpace::windows(1 << 32, 4);
        for addr in [0u64, 17, 0x1000_0063, 0xDEAD_BEEF] {
            assert_eq!(space.remap(2, addr) % LINE_BYTES, addr % LINE_BYTES);
        }
    }

    #[test]
    fn identity_space_is_a_no_op() {
        let space = AddressSpace::identity();
        assert_eq!(space.remap(3, 0xABC0), 0xABC0);
    }

    #[test]
    fn one_window_covering_the_trace_is_identity() {
        // Every bundled trace address is below the span, so a single
        // rate-mode core sees the raw trace.
        let space = AddressSpace::windows(1 << 40, 1);
        assert_eq!(space.remap(0, 0x2_8000_0000 - 64), 0x2_8000_0000 - 64);
    }

    #[test]
    fn rate_shares_one_allocation() {
        let trace = Arc::new(vec![TraceOp::Load(0x40), TraceOp::Compute(3)]);
        let cores = CoreTrace::rate(&trace, 1 << 32, 4);
        assert_eq!(cores.len(), 4);
        for c in &cores {
            assert!(Arc::ptr_eq(&c.trace, &trace), "no deep clone");
        }
    }

    #[test]
    fn iterator_remaps_memory_ops_only() {
        let trace = Arc::new(vec![
            TraceOp::Compute(7),
            TraceOp::Load(0x40),
            TraceOp::DependentLoad(0x80),
            TraceOp::Store(0xC0),
        ]);
        let space = AddressSpace::windows(1 << 20, 2);
        let ops: Vec<TraceOp> = CoreTrace::new(Arc::clone(&trace), 1, space).collect();
        let w = space.window();
        assert_eq!(
            ops,
            vec![
                TraceOp::Compute(7),
                TraceOp::Load(0x40 + w),
                TraceOp::DependentLoad(0x80 + w),
                TraceOp::Store(0xC0 + w),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = AddressSpace::windows(1 << 30, 0);
    }
}
