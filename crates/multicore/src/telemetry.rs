//! Wake-reason attribution for the next-event scheduler.
//!
//! Every time [`crate::MultiCoreSystem`]'s event-driven run loop moves a
//! sleeping core back onto the awake-list, the wake is tagged with the
//! reason the scheduler had for it. The counters are plain `u64`s
//! maintained inline (no atomics, no indirection), so attribution cannot
//! perturb the simulation; the per-cycle reference policy never sleeps a
//! core and leaves all of them at zero.

use secddr_telemetry::TelemetrySnapshot;

/// Why sleeping cores were woken, one counter per cause. Every
/// event-driven wake lands in exactly one bucket, so
/// [`WakeReasons::total`] counts all wakes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeReasons {
    /// A routed completion for the core arrived from the shared backend:
    /// its state changed, so any registered bound was moot and the core
    /// was force-woken.
    pub completion: u64,
    /// An *exact* sleep's registered bound came due (own in-flight
    /// completions and in-order retire only — these never fire early).
    pub timer: u64,
    /// A *capacity* sleep's registered bound came due. The bound rides
    /// shared queue-space events, so the core may step to no effect —
    /// the scheduler's only source of spurious wake-ups.
    pub spurious: u64,
    /// The due bound was installed by the post-submission re-derive:
    /// another core's accepted submission moved shared queue space, so
    /// the capacity sleeper's bound was refreshed to an earlier cycle.
    pub submit_rederive: u64,
}

impl WakeReasons {
    /// Total wakes across every cause. The exhaustive destructuring makes
    /// adding a bucket without counting it here a compile error.
    #[must_use]
    pub fn total(&self) -> u64 {
        let Self {
            completion,
            timer,
            spurious,
            submit_rederive,
        } = self;
        completion + timer + spurious + submit_rederive
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &Self) {
        let Self {
            completion,
            timer,
            spurious,
            submit_rederive,
        } = other;
        self.completion += completion;
        self.timer += timer;
        self.spurious += spurious;
        self.submit_rederive += submit_rederive;
    }

    /// Renders the buckets into `snap` under the `multicore.wake.*`
    /// names, plus the reconciliation total `multicore.wakes_total`.
    pub fn render_into(&self, snap: &mut TelemetrySnapshot) {
        let Self {
            completion,
            timer,
            spurious,
            submit_rederive,
        } = self;
        snap.add_counter("multicore.wakes_total", self.total());
        snap.add_counter("multicore.wake.completion", *completion);
        snap.add_counter("multicore.wake.timer", *timer);
        snap.add_counter("multicore.wake.spurious", *spurious);
        snap.add_counter("multicore.wake.submit_rederive", *submit_rederive);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_merge_agree() {
        let mut a = WakeReasons {
            completion: 3,
            timer: 2,
            spurious: 1,
            submit_rederive: 4,
        };
        let b = WakeReasons {
            completion: 10,
            timer: 0,
            spurious: 5,
            submit_rederive: 1,
        };
        let before = a.total() + b.total();
        a.merge(&b);
        assert_eq!(a.total(), before);
    }

    #[test]
    fn snapshot_buckets_sum_to_total() {
        let w = WakeReasons {
            completion: 7,
            timer: 1,
            spurious: 2,
            submit_rederive: 3,
        };
        let mut snap = TelemetrySnapshot::default();
        w.render_into(&mut snap);
        assert_eq!(
            snap.counter_prefix_sum("multicore.wake."),
            snap.counter("multicore.wakes_total")
        );
        assert_eq!(snap.counter("multicore.wakes_total"), 13);
    }
}
