//! Sim-time windowed series recording for the multi-core scheduler:
//! wake-reason attribution, per-core step counts, and per-core retired
//! instructions, bucketed into fixed CPU-cycle epochs.
//!
//! Same zero-perturbation discipline as [`crate::WakeReasons`] itself:
//! the recorder is opt-in (`Option` on the system), keeps plain
//! non-atomic `u64`s, and lives entirely outside
//! [`MultiCoreResult`](crate::MultiCoreResult) — enabling it provably
//! cannot bend the simulation (pinned by `tests/series_differential.rs`).
//!
//! Both run loops roll the recorder immediately after `clock.tick()` —
//! before any wake is attributed or any core steps at the new cycle — so
//! every increment lands in the epoch containing its own timestamp, and
//! all-asleep jumps leave the skipped interior epochs zero.

use cpu_model::exec::CoreEngine;
use secddr_telemetry::{EpochRoller, SeriesSnapshot};

use crate::telemetry::WakeReasons;

/// Scheduler-layer series recorder (see module docs). Owned by
/// [`MultiCoreSystem`](crate::MultiCoreSystem) behind an `Option`.
#[derive(Debug, Clone)]
pub(crate) struct MulticoreSeries {
    roller: EpochRoller,
    /// Cumulative wake attribution at the last epoch close.
    base_wake: WakeReasons,
    /// Cumulative per-core step counts at the last epoch close.
    base_steps: Vec<u64>,
    /// Cumulative per-core retired instructions at the last epoch close.
    base_retired: Vec<u64>,
    snap: SeriesSnapshot,
}

impl MulticoreSeries {
    /// A recorder with `width` CPU cycles per epoch, re-based on the
    /// system's *current* cumulative counters so a mid-life enable (or
    /// an enable between two cumulative `run`s) starts its first epoch
    /// at zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub(crate) fn new(width: u64, wake: &WakeReasons, steps: &[u64], cores: &[CoreEngine]) -> Self {
        Self {
            roller: EpochRoller::new(width),
            base_wake: *wake,
            base_steps: steps.to_vec(),
            base_retired: cores.iter().map(CoreEngine::instructions).collect(),
            snap: SeriesSnapshot::new(width),
        }
    }

    /// Closes the open epoch if `now` crossed a window boundary,
    /// crediting everything accumulated since the last close. Call
    /// right after the clock advances, before recording anything at
    /// `now`.
    pub(crate) fn roll(
        &mut self,
        now: u64,
        wake: &WakeReasons,
        steps: &[u64],
        cores: &[CoreEngine],
    ) {
        if let Some(epoch) = self.roller.close_epoch(now) {
            self.flush(epoch, wake, steps, cores);
        }
    }

    /// Credits the cumulative-vs-base deltas to `epoch` and re-bases.
    fn flush(&mut self, epoch: u64, wake: &WakeReasons, steps: &[u64], cores: &[CoreEngine]) {
        let snap = &mut self.snap;
        snap.add(
            "multicore.wakes_total",
            epoch,
            wake.total() - self.base_wake.total(),
        );
        // Exhaustive destructuring: a new wake bucket must pick its row
        // name here (and join the reconciliation) to compile.
        let WakeReasons {
            completion,
            timer,
            spurious,
            submit_rederive,
        } = *wake;
        let b = self.base_wake;
        snap.add(
            "multicore.wake.completion",
            epoch,
            completion - b.completion,
        );
        snap.add("multicore.wake.timer", epoch, timer - b.timer);
        snap.add("multicore.wake.spurious", epoch, spurious - b.spurious);
        snap.add(
            "multicore.wake.submit_rederive",
            epoch,
            submit_rederive - b.submit_rederive,
        );
        let mut step_delta = 0;
        for (i, (cur, base)) in steps.iter().zip(self.base_steps.iter_mut()).enumerate() {
            if *cur > *base {
                snap.add(&format!("multicore.core{i:02}.steps"), epoch, cur - *base);
                step_delta += cur - *base;
            }
            *base = *cur;
        }
        snap.add("multicore.core.steps", epoch, step_delta);
        for (i, (core, base)) in cores.iter().zip(self.base_retired.iter_mut()).enumerate() {
            let cur = core.instructions();
            if cur > *base {
                snap.add(&format!("multicore.core{i:02}.retired"), epoch, cur - *base);
            }
            *base = cur;
        }
        self.base_wake = *wake;
    }

    /// The series so far, with the open partial epoch folded in.
    /// Non-destructive: recording continues.
    pub(crate) fn snapshot(
        &self,
        wake: &WakeReasons,
        steps: &[u64],
        cores: &[CoreEngine],
    ) -> SeriesSnapshot {
        let mut copy = self.clone();
        let open = copy.roller.open_epoch();
        copy.flush(open, wake, steps, cores);
        copy.snap
    }
}
