//! N OOO cores sharing one LLC and one memory backend behind a true
//! next-event scheduler.
//!
//! [`MultiCoreSystem`] owns N [`CoreEngine`]s (each a private ROB, L1D
//! and stream prefetcher — the machinery extracted from `CpuSystem`),
//! one shared LLC, and one [`MemoryBackend`]. Completed read tokens are
//! routed to their owning cores, so the backend is oblivious to the core
//! count — exactly the seam `ShardedEngine` already presents to a single
//! core, which is what makes cores × channels compose
//! (`MultiCoreSystem<ShardedEngine>` works unchanged).
//!
//! # Scheduling
//!
//! Under [`sim_kernel::Advance::ToNextEvent`] the run loop is organized
//! around three structures instead of a per-cycle scan:
//!
//! * an **awake-list** — a sorted dense list of awake, unfinished core
//!   indices, maintained incrementally on sleep/wake/finish. Only listed
//!   cores step; a sleeping or finished core costs literally zero per
//!   cycle (no scan slot, no `routed` clear);
//! * a **block-advanced backend** — the backend is touched only when its
//!   memoized [`MemoryBackend::next_completion_event`] bound comes due,
//!   and then advanced in one [`MemoryBackend::advance_to`] call whose
//!   cycle-stamped completions are routed by a dense token→core table
//!   (tokens are a dense sequence by the backend contract, so routing is
//!   one indexed load, no hashing);
//! * a **merged event heap** — sleeping cores register wake-up bounds in
//!   a [`sim_kernel::EventQueue`] with lazy staleness filtering
//!   ([`sim_kernel::EventQueue::peek`] inspects without the old
//!   pop-then-push round trip). Whenever the awake-list is empty the
//!   clock jumps straight to the earlier of the heap head and the
//!   backend bound — idle windows cost one peek even when only *some*
//!   cores ever sleep.
//!
//! Sleeps come in two kinds, classified by [`CoreEngine::sleep_plan`].
//! *Exact* sleeps (no backend-capacity involvement) wait only on the
//! core's own routed completions and its in-order retire cycle — they
//! never fire spuriously and stay valid across other cores' activity.
//! *Capacity* sleeps are bounded by shared queue-space events, so after
//! any cycle with an accepted submission the scheduler re-derives just
//! the capacity sleepers' bounds (keeping the earlier) plus the backend
//! bound — the mutated backend can owe them an earlier wake-up. During
//! all-asleep windows nothing submits, so every registered bound stays
//! valid and the global jump is sound. Results are bit-identical to
//! [`sim_kernel::Advance::PerCycle`], where every core steps every cycle
//! against a backend ticked every cycle.
//!
//! The backend side of each jump is block-advanced too: since PR 7 the
//! DDR4 controllers ride their exact *decision bound*
//! (`DramSystem::tick_until`), executing only the cycles where a
//! command can issue or a completion pop. Saturated phases — where both
//! policies used to converge on one controller tick per busy DRAM
//! cycle — therefore no longer floor the wall-clock; the per-record
//! `controller_decision_cycles` / `controller_busy_cycles` counters in
//! `BENCH_kernel.json` measure exactly this gap.

use cpu_model::exec::{CoreEngine, SleepPlan};
use cpu_model::system::{AccessKind, BatchAccess, Busy, MemoryBackend};
use cpu_model::{Cache, CacheConfig, CacheStats, CpuConfig, SimResult, TraceOp};
use secddr_telemetry::TelemetrySnapshot;
use sim_kernel::{EventQueue, SimClock};

use crate::telemetry::WakeReasons;

/// Sentinel in the token→core table: no routing entry (writes, and
/// tokens whose completion was already delivered).
const NO_OWNER: u32 = u32::MAX;

/// Records `core` as the owner of `token` in the dense side-table.
/// Tokens ascend densely from zero (the [`MemoryBackend`] contract), so
/// the table grows amortized-O(1) and never rehashes.
fn record_owner(table: &mut Vec<u32>, token: u64, core: usize) {
    let idx = usize::try_from(token).expect("token fits in memory");
    if idx >= table.len() {
        table.resize(idx + 1, NO_OWNER);
    }
    table[idx] = core as u32;
}

/// Takes (and clears) the owning core of `token`, if it was a routed
/// read. O(1) arithmetic — the completion-routing hot path.
fn take_owner(table: &mut [u32], token: u64) -> Option<usize> {
    let slot = table.get_mut(token as usize)?;
    let owner = *slot;
    if owner == NO_OWNER {
        return None;
    }
    *slot = NO_OWNER;
    Some(owner as usize)
}

/// Forwards one core's backend traffic to the shared backend, recording
/// which core owns each accepted read token so completions can be routed
/// back. Cores never advance the shared backend — the scheduler does.
struct RoutedBackend<'a, B> {
    inner: &'a mut B,
    token_owner: &'a mut Vec<u32>,
    core: usize,
}

impl<B: MemoryBackend> MemoryBackend for RoutedBackend<'_, B> {
    fn submit(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        is_prefetch: bool,
    ) -> Result<u64, Busy> {
        let token = self.inner.submit(kind, addr, now, is_prefetch)?;
        if kind == AccessKind::Read {
            record_owner(self.token_owner, token, self.core);
        }
        Ok(token)
    }

    fn submit_batch(
        &mut self,
        batch: &[BatchAccess],
        now: u64,
        results: &mut Vec<Result<u64, Busy>>,
    ) {
        let start = results.len();
        self.inner.submit_batch(batch, now, results);
        for (access, result) in batch.iter().zip(&results[start..]) {
            if access.kind == AccessKind::Read {
                if let Ok(token) = result {
                    record_owner(self.token_owner, *token, self.core);
                }
            }
        }
    }

    fn tick(&mut self, _now: u64) -> Vec<u64> {
        unreachable!("cores never advance the shared backend; the scheduler does")
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.inner.next_event(now)
    }

    fn next_completion_event(&self, now: u64) -> Option<u64> {
        self.inner.next_completion_event(now)
    }

    fn next_read_capacity_event(&self, now: u64, addr: u64) -> Option<u64> {
        self.inner.next_read_capacity_event(now, addr)
    }
}

/// Per-core and aggregate results of one [`MultiCoreSystem::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCoreResult {
    /// One [`SimResult`] per core, in core-index order. A core's
    /// `cycles` is the cycle it drained (finished its trace, ROB, and
    /// outstanding misses).
    pub per_core: Vec<SimResult>,
}

impl MultiCoreResult {
    /// All cores folded into one [`SimResult`] via [`SimResult::merge`]:
    /// counters sum, cache statistics merge, `cycles` is the slowest
    /// core's finish cycle.
    ///
    /// # Panics
    ///
    /// Panics when there are no cores (a [`MultiCoreSystem`] always has
    /// at least one).
    #[must_use]
    pub fn merged(&self) -> SimResult {
        let (first, rest) = self.per_core.split_first().expect("at least one core ran");
        let mut merged = first.clone();
        for r in rest {
            merged.merge(r);
        }
        merged
    }

    /// Aggregate IPC: the sum of per-core IPCs (the rate-mode throughput
    /// metric — N cores each at the single-core IPC score N× the
    /// aggregate).
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        self.per_core.iter().map(SimResult::ipc).sum()
    }

    /// Weighted speedup against per-core stand-alone baselines:
    /// `Σ_i IPC_i^shared / IPC_i^alone`. Equals the core count when
    /// sharing costs nothing; lower values quantify LLC and memory
    /// contention.
    ///
    /// # Panics
    ///
    /// Panics when `alone_ipc` does not have one (positive) entry per
    /// core.
    #[must_use]
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(
            alone_ipc.len(),
            self.per_core.len(),
            "one stand-alone IPC per core"
        );
        self.per_core
            .iter()
            .zip(alone_ipc)
            .map(|(r, &alone)| {
                assert!(alone > 0.0, "stand-alone IPC must be positive");
                r.ipc() / alone
            })
            .sum()
    }
}

/// N OOO cores over one shared LLC and one shared [`MemoryBackend`],
/// interleaved by next-event time.
#[derive(Debug)]
pub struct MultiCoreSystem<B> {
    cfg: CpuConfig,
    backend: B,
    llc: Cache,
    cores: Vec<CoreEngine>,
    clock: SimClock,
    /// Dense token→owning-core table for completion routing, indexed by
    /// token value (`NO_OWNER` for writes and delivered reads).
    token_owner: Vec<u32>,
    /// Times each core was actually stepped (the event-driven scheduler's
    /// efficiency measure: spurious wake-ups step a core to no effect, so
    /// fewer steps at identical results is the win).
    core_steps: Vec<u64>,
    /// Wake-reason attribution for the event-driven scheduler (all zero
    /// under the per-cycle reference, which never sleeps a core).
    wake: WakeReasons,
    /// Opt-in sim-time windowed series recorder (see [`crate::series`]);
    /// `None` costs one branch per cycle and nothing else.
    series: Option<crate::series::MulticoreSeries>,
}

impl<B: MemoryBackend> MultiCoreSystem<B> {
    /// Builds `cores` identical cores (Table I parameters from `cfg`)
    /// over one Table I shared LLC and `backend`.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero.
    pub fn new(cores: usize, cfg: CpuConfig, backend: B) -> Self {
        assert!(cores >= 1, "at least one core is required");
        Self {
            backend,
            llc: Cache::new(CacheConfig::llc()),
            cores: (0..cores).map(|_| CoreEngine::new(cfg)).collect(),
            clock: SimClock::new(),
            token_owner: Vec::new(),
            core_steps: vec![0; cores],
            wake: WakeReasons::default(),
            series: None,
            cfg,
        }
    }

    /// Enables sim-time windowed series recording at `epoch_width` CPU
    /// cycles per epoch, re-based on the current cumulative counters.
    /// Purely additive: results stay bit-identical (pinned by
    /// `tests/series_differential.rs`). Note this covers the scheduler
    /// layer only — enable the backend's own series separately and
    /// [`secddr_telemetry::SeriesSnapshot::merge`] the two.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_width` is zero.
    pub fn enable_series(&mut self, epoch_width: u64) {
        self.series = Some(crate::series::MulticoreSeries::new(
            epoch_width,
            &self.wake,
            &self.core_steps,
            &self.cores,
        ));
    }

    /// The recorded series with the open partial epoch folded in, or
    /// `None` when [`Self::enable_series`] was never called.
    #[must_use]
    pub fn series_snapshot(&self) -> Option<secddr_telemetry::SeriesSnapshot> {
        self.series
            .as_ref()
            .map(|s| s.snapshot(&self.wake, &self.core_steps, &self.cores))
    }

    /// How many cycles each core was actually stepped. Under the
    /// event-driven policy a sleeping core skips its due-nothing cycles,
    /// so this counts real work plus any spurious wake-ups — the
    /// quantity the next-event scheduler minimizes.
    #[must_use]
    pub fn core_step_counts(&self) -> &[u64] {
        &self.core_steps
    }

    /// Wake-reason attribution accumulated by the event-driven scheduler
    /// (every wake lands in exactly one bucket; all zero under
    /// [`sim_kernel::Advance::PerCycle`], which never sleeps a core).
    #[must_use]
    pub fn wake_reasons(&self) -> WakeReasons {
        self.wake
    }

    /// Renders this system's scheduler diagnostics — wake-reason buckets
    /// plus the per-core step totals — into one mergeable
    /// [`TelemetrySnapshot`] under the `multicore.*` names.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        self.wake.render_into(&mut snap);
        snap.add_counter("multicore.core.steps", self.core_steps.iter().sum());
        snap
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Read access to the shared backend (for engine statistics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the shared backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The shared LLC's own statistics (the per-core shares in
    /// [`MultiCoreResult::per_core`] sum to exactly these totals).
    #[must_use]
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// Runs one trace per core to completion (all cores drained) and
    /// returns per-core plus aggregate results.
    ///
    /// Calling `run` again continues cumulatively: the clock keeps
    /// advancing, the shared LLC and per-core caches stay warm, and
    /// counters accumulate across runs (the single-core `CpuSystem`
    /// re-run semantics, per core).
    ///
    /// # Panics
    ///
    /// Panics when `traces` does not hold exactly one trace per core.
    pub fn run<T: Iterator<Item = TraceOp>>(&mut self, mut traces: Vec<T>) -> MultiCoreResult {
        let n = self.cores.len();
        assert_eq!(traces.len(), n, "exactly one trace per core");
        for core in &mut self.cores {
            core.begin_trace();
        }
        if self.cfg.advance.is_event_driven() {
            self.run_event_driven(&mut traces);
        } else {
            self.run_per_cycle(&mut traces);
        }
        MultiCoreResult {
            per_core: self.cores.iter().map(CoreEngine::result).collect(),
        }
    }

    /// The per-cycle reference: every cycle the backend ticks once and
    /// every unfinished core steps, in core-index order. This is the
    /// semantics the event-driven scheduler must reproduce bit for bit.
    fn run_per_cycle<T: Iterator<Item = TraceOp>>(&mut self, traces: &mut [T]) {
        let n = self.cores.len();
        let Self {
            backend,
            llc,
            cores,
            clock,
            token_owner,
            core_steps,
            wake,
            series,
            ..
        } = self;
        let mut routed: Vec<Vec<u64>> = vec![Vec::new(); n];
        loop {
            let now = clock.tick();
            if let Some(series) = series.as_mut() {
                series.roll(now, wake, core_steps, cores);
            }
            for v in &mut routed {
                v.clear();
            }
            for token in backend.tick(now) {
                if let Some(core) = take_owner(token_owner, token) {
                    routed[core].push(token);
                }
            }
            let mut all_finished = true;
            for i in 0..n {
                if cores[i].finished() {
                    continue;
                }
                core_steps[i] += 1;
                let mut port = RoutedBackend {
                    inner: &mut *backend,
                    token_owner: &mut *token_owner,
                    core: i,
                };
                let outcome = cores[i].step(now, llc, &mut port, &mut traces[i], &routed[i]);
                if !outcome.finished {
                    all_finished = false;
                }
            }
            if all_finished {
                break;
            }
        }
    }

    /// The next-event scheduler (see the module docs for the invariant
    /// arguments): awake-list iteration, block-advanced backend, global
    /// jumps keyed off the merged event heap.
    fn run_event_driven<T: Iterator<Item = TraceOp>>(&mut self, traces: &mut [T]) {
        let n = self.cores.len();
        let Self {
            backend,
            llc,
            cores,
            clock,
            token_owner,
            core_steps,
            wake,
            series,
            ..
        } = self;

        // Awake, unfinished cores in ascending index order (cores share
        // the LLC and backend, so step order is part of the semantics).
        let mut awake_list: Vec<usize> = (0..n).collect();
        let mut awake = vec![true; n];
        // Registered wake-up per sleeping core (`u64::MAX` = none: only a
        // routed completion wakes it); heap entries not matching are
        // stale and filtered lazily.
        let mut bounds = vec![u64::MAX; n];
        let mut heap: EventQueue<usize> = EventQueue::new();
        // Sleepers whose bound came from shared backend capacity — the
        // only ones refreshed after a submission cycle.
        let mut capacity_sleeper = vec![false; n];
        let mut capacity_sleepers: Vec<usize> = Vec::new();
        // Provenance of each registered bound: `true` when the current
        // bound was installed by the post-submission re-derive rather
        // than the core's own sleep plan (wake-reason attribution only).
        let mut rederived = vec![false; n];
        let mut routed: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut routed_cores: Vec<usize> = Vec::new();
        let mut stamps: Vec<(u64, u64)> = Vec::new();
        let mut finished = 0usize;
        // Memoized lower bound on the backend's next visible completion:
        // the only cycles the backend is touched at all. Refreshed after
        // every harvest and every cycle with an accepted submission (the
        // two ways backend state changes).
        let mut backend_bound = backend
            .next_completion_event(clock.now())
            .unwrap_or(u64::MAX);

        loop {
            if awake_list.is_empty() {
                // Nothing can step or submit until a registered core
                // wake-up or a backend completion: jump to the earliest.
                let wake = earliest_wake(&mut heap, &bounds)
                    .unwrap_or(u64::MAX)
                    .min(backend_bound);
                assert_ne!(
                    wake,
                    u64::MAX,
                    "scheduler deadlock: every core asleep with no pending event"
                );
                if wake > clock.now() + 1 {
                    clock.skip_to(wake - 1);
                }
            }
            let now = clock.tick();
            if let Some(series) = series.as_mut() {
                series.roll(now, wake, core_steps, cores);
            }

            // Clear last cycle's delivery buffers (touched cores only).
            for &i in &routed_cores {
                routed[i].clear();
            }
            routed_cores.clear();

            // Harvest the backend only when its bound is due; completions
            // force-wake their owners (their state changes, so any
            // registered bound is moot).
            if backend_bound <= now {
                stamps.clear();
                backend.advance_to(now, &mut stamps);
                backend_bound = backend.next_completion_event(now).unwrap_or(u64::MAX);
                for &(at, token) in &stamps {
                    debug_assert_eq!(at, now, "completion matured inside a skipped window");
                    let Some(core) = take_owner(token_owner, token) else {
                        continue;
                    };
                    if cores[core].finished() {
                        continue;
                    }
                    if routed[core].is_empty() {
                        routed_cores.push(core);
                    }
                    routed[core].push(token);
                    if !awake[core] {
                        wake.completion += 1;
                        awake[core] = true;
                        insert_sorted(&mut awake_list, core);
                        bounds[core] = u64::MAX;
                        if capacity_sleeper[core] {
                            capacity_sleeper[core] = false;
                            remove_unordered(&mut capacity_sleepers, core);
                        }
                    }
                }
            }

            // Wake sleeping cores whose registered bound is due.
            while let Some((at, i)) = heap.pop_due(now) {
                if bounds[i] != at {
                    continue; // stale entry superseded by an earlier bound
                }
                bounds[i] = u64::MAX;
                debug_assert!(!awake[i] && !cores[i].finished());
                if rederived[i] {
                    wake.submit_rederive += 1;
                } else if capacity_sleeper[i] {
                    wake.spurious += 1;
                } else {
                    wake.timer += 1;
                }
                awake[i] = true;
                insert_sorted(&mut awake_list, i);
                if capacity_sleeper[i] {
                    capacity_sleeper[i] = false;
                    remove_unordered(&mut capacity_sleepers, i);
                }
            }

            // Step the awake cores, in index order, compacting the list
            // in place as cores finish or go to sleep.
            let mut any_submitted = false;
            let mut idx = 0;
            while idx < awake_list.len() {
                let i = awake_list[idx];
                core_steps[i] += 1;
                let outcome = {
                    let mut port = RoutedBackend {
                        inner: &mut *backend,
                        token_owner: &mut *token_owner,
                        core: i,
                    };
                    cores[i].step(now, llc, &mut port, &mut traces[i], &routed[i])
                };
                any_submitted |= outcome.submitted;
                if outcome.finished {
                    awake[i] = false;
                    awake_list.remove(idx);
                    finished += 1;
                    continue;
                }
                match cores[i].sleep_plan(now, &*backend) {
                    SleepPlan::Run => idx += 1,
                    SleepPlan::Sleep { wake_at, capacity } => {
                        awake[i] = false;
                        awake_list.remove(idx);
                        bounds[i] = wake_at.unwrap_or(u64::MAX);
                        rederived[i] = false;
                        if let Some(at) = wake_at {
                            heap.push(at, i);
                        }
                        if capacity {
                            capacity_sleeper[i] = true;
                            capacity_sleepers.push(i);
                        }
                    }
                }
            }
            if finished == n {
                break;
            }

            // An accepted submission mutated the backend: completions may
            // now land earlier and shared queue-space bounds may have
            // moved, so re-derive the backend bound and just the capacity
            // sleepers' bounds (exact sleepers are unaffected by other
            // cores' traffic), keeping the earlier of old and new.
            if any_submitted {
                backend_bound = backend.next_completion_event(now).unwrap_or(u64::MAX);
                for &i in &capacity_sleepers {
                    let refreshed = cores[i].wake_bound(now, &*backend).unwrap_or(now + 1);
                    if refreshed < bounds[i] {
                        bounds[i] = refreshed;
                        rederived[i] = true;
                        heap.push(refreshed, i);
                    }
                }
            }
        }

        // Leave the backend synced to the finish cycle so statistics
        // reflect the whole run — the per-cycle reference ticks it every
        // cycle through the last. Any stragglers (in-flight prefetches)
        // are dropped, as the reference drops them for finished cores.
        stamps.clear();
        backend.advance_to(clock.now(), &mut stamps);
    }
}

/// Inserts `i` into the sorted awake-list (N ≤ a few dozen, so a binary
/// search plus shift beats any fancier structure).
fn insert_sorted(list: &mut Vec<usize>, i: usize) {
    match list.binary_search(&i) {
        Ok(_) => debug_assert!(false, "core {i} woken twice"),
        Err(pos) => list.insert(pos, i),
    }
}

/// Removes `i` from an unordered membership list.
fn remove_unordered(list: &mut Vec<usize>, i: usize) {
    let pos = list.iter().position(|&x| x == i).expect("member present");
    list.swap_remove(pos);
}

/// The earliest registered wake-up among sleeping cores, popping stale
/// heap entries (superseded by an earlier refresh, or their core woke
/// since) on the way. The head entry is only inspected, never cycled
/// through a pop-and-repush.
fn earliest_wake(heap: &mut EventQueue<usize>, bounds: &[u64]) -> Option<u64> {
    loop {
        let (at, i) = {
            let (at, &i) = heap.peek()?;
            (at, i)
        };
        if bounds[i] == at {
            return Some(at);
        }
        heap.pop_due(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AddressSpace, CoreTrace};
    use cpu_model::{Advance, CpuSystem, FixedLatencyBackend};
    use std::sync::Arc;

    fn mixed_trace(seed: u64, len: u64) -> Vec<TraceOp> {
        (0..len)
            .map(|i| {
                let x = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
                match x % 5 {
                    0 => TraceOp::Compute((x % 40) as u32 + 1),
                    1 => TraceOp::Load((x << 3) & 0xFFF_FFC0),
                    2 => TraceOp::DependentLoad((x << 4) & 0xFFF_FFC0),
                    3 => TraceOp::Store((x << 3) & 0xFFF_FFC0),
                    _ => TraceOp::Load((x % 2048) * 64),
                }
            })
            .collect()
    }

    fn cfg(advance: Advance) -> CpuConfig {
        CpuConfig {
            advance,
            ..CpuConfig::default()
        }
    }

    #[test]
    fn single_core_matches_cpusystem() {
        let trace = mixed_trace(0xA5, 3_000);
        for advance in [Advance::ToNextEvent, Advance::PerCycle] {
            let single = CpuSystem::new(cfg(advance), FixedLatencyBackend::new(180))
                .run(trace.iter().copied());
            let mut multi = MultiCoreSystem::new(1, cfg(advance), FixedLatencyBackend::new(180));
            let result = multi.run(vec![trace.iter().copied()]);
            assert_eq!(result.per_core.len(), 1);
            assert_eq!(result.per_core[0], single, "{advance:?}");
            assert_eq!(result.merged(), single, "{advance:?}");
        }
    }

    #[test]
    fn event_driven_matches_per_cycle() {
        let traces: Vec<Vec<TraceOp>> = (0..3).map(|c| mixed_trace(c * 7 + 1, 2_000)).collect();
        let run = |advance| {
            let mut sys = MultiCoreSystem::new(3, cfg(advance), FixedLatencyBackend::new(250));
            sys.run(traces.iter().map(|t| t.iter().copied()).collect())
        };
        assert_eq!(run(Advance::ToNextEvent), run(Advance::PerCycle));
    }

    #[test]
    fn rate_mode_retires_every_copy() {
        let trace = Arc::new(mixed_trace(3, 2_000));
        let per_copy: u64 = trace.iter().map(TraceOp::instructions).sum();
        let mut sys =
            MultiCoreSystem::new(4, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(200));
        let result = sys.run(CoreTrace::rate(&trace, 1 << 32, 4));
        assert_eq!(result.per_core.len(), 4);
        for r in &result.per_core {
            assert_eq!(r.instructions, per_copy);
        }
        assert_eq!(result.merged().instructions, 4 * per_copy);
        assert_eq!(
            result.merged().cycles,
            result.per_core.iter().map(|r| r.cycles).max().unwrap()
        );
    }

    #[test]
    fn per_core_llc_shares_sum_to_shared_totals() {
        let trace = Arc::new(mixed_trace(11, 3_000));
        let mut sys =
            MultiCoreSystem::new(4, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(150));
        let result = sys.run(CoreTrace::rate(&trace, 1 << 32, 4));
        let merged = result.merged();
        assert_eq!(&merged.llc, sys.llc_stats());
        assert!(merged.llc.misses > 0);
    }

    #[test]
    fn compute_only_cores_do_not_interfere() {
        // No memory traffic: each core's run is as long as it would be
        // alone, and the scheduler still terminates via the global jump.
        let trace: Vec<TraceOp> = (0..200).map(|_| TraceOp::Compute(60)).collect();
        let alone = CpuSystem::new(cfg(Advance::ToNextEvent), FixedLatencyBackend::new(100))
            .run(trace.iter().copied());
        let mut sys =
            MultiCoreSystem::new(4, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(100));
        let result = sys.run((0..4).map(|_| trace.iter().copied()).collect());
        for r in &result.per_core {
            assert_eq!(r.cycles, alone.cycles);
            assert_eq!(r.instructions, alone.instructions);
        }
    }

    #[test]
    fn heterogeneous_mix_produces_per_core_results() {
        let a = Arc::new(mixed_trace(1, 1_500));
        let b = Arc::new((0..500).map(|_| TraceOp::Compute(50)).collect::<Vec<_>>());
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(220));
        let result = sys.run(CoreTrace::mix(
            vec![Arc::clone(&a), Arc::clone(&b)],
            1 << 32,
        ));
        let ia: u64 = a.iter().map(TraceOp::instructions).sum();
        let ib: u64 = b.iter().map(TraceOp::instructions).sum();
        assert_eq!(result.per_core[0].instructions, ia);
        assert_eq!(result.per_core[1].instructions, ib);
        assert!(result.per_core[1].ipc() > result.per_core[0].ipc());
    }

    #[test]
    fn metric_accessors() {
        let result = MultiCoreResult {
            per_core: vec![
                SimResult {
                    instructions: 100,
                    cycles: 100,
                    l1: CacheStats::default(),
                    llc: CacheStats::default(),
                    prefetches: 0,
                },
                SimResult {
                    instructions: 300,
                    cycles: 100,
                    l1: CacheStats::default(),
                    llc: CacheStats::default(),
                    prefetches: 0,
                },
            ],
        };
        assert!((result.aggregate_ipc() - 4.0).abs() < 1e-12);
        // Cores alone ran at IPC 2 and 4: weighted speedup 0.5 + 0.75.
        assert!((result.weighted_speedup(&[2.0, 4.0]) - 1.25).abs() < 1e-12);
        assert!((result.merged().ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn identity_address_space_shares_lines_across_cores() {
        // Core 0 fetches a line; core 1 touches the same trace address
        // much later (after a long compute ramp). With the identity
        // disambiguator core 1 hits the line core 0 installed in the
        // shared LLC; with per-core windows the addresses are disjoint
        // and both cores miss.
        let early = Arc::new(vec![TraceOp::Load(0x40_0000)]);
        let late = Arc::new(vec![TraceOp::Compute(6_000), TraceOp::Load(0x40_0000)]);
        let misses_with = |space: AddressSpace| {
            let mut sys =
                MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(100));
            let traces = vec![
                CoreTrace::new(Arc::clone(&early), 0, space),
                CoreTrace::new(Arc::clone(&late), 1, space),
            ];
            sys.run(traces).merged().llc.misses
        };
        assert_eq!(misses_with(AddressSpace::identity()), 1);
        assert_eq!(misses_with(AddressSpace::windows(1 << 32, 2)), 2);
    }

    #[test]
    fn second_run_continues_cumulatively() {
        let trace = Arc::new(mixed_trace(9, 800));
        let per_copy: u64 = trace.iter().map(TraceOp::instructions).sum();
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(150));
        let r1 = sys.run(CoreTrace::rate(&trace, 1 << 32, 2));
        let r2 = sys.run(CoreTrace::rate(&trace, 1 << 32, 2));
        for (a, b) in r1.per_core.iter().zip(&r2.per_core) {
            assert_eq!(a.instructions, per_copy);
            assert_eq!(b.instructions, 2 * per_copy, "counters accumulate");
            assert!(b.cycles > a.cycles, "clock keeps advancing");
        }
    }

    #[test]
    fn sleeping_core_ignores_other_cores_completions() {
        // Core 0 streams memory misses (completions land nearly every
        // cycle once its pipeline fills); core 1 walks a serialized
        // pointer chase, sleeping ~latency cycles per link. Its waits
        // are exact (routed completions plus retire), so core 0's
        // completion stream never punctures them — its steps stay
        // proportional to its own chain, not to core 0's traffic.
        let heavy: Vec<TraceOp> = (0..2_000).map(|i| TraceOp::Load(i * 64 * 7)).collect();
        let chase: Vec<TraceOp> = (0..30)
            .map(|i| TraceOp::DependentLoad(0x900_0000 + i * 64 * 129))
            .collect();
        let run = |advance| {
            let mut sys = MultiCoreSystem::new(2, cfg(advance), FixedLatencyBackend::new(300));
            let result = sys.run(vec![heavy.iter().copied(), chase.iter().copied()]);
            (result, sys.core_step_counts().to_vec())
        };
        let (fast, fast_steps) = run(Advance::ToNextEvent);
        let (reference, ref_steps) = run(Advance::PerCycle);
        assert_eq!(fast, reference, "exact sleeps must not change results");
        assert!(
            fast_steps[1] * 10 < ref_steps[1],
            "chasing core barely steps under exact waits: {fast_steps:?} vs {ref_steps:?}"
        );
    }

    #[test]
    fn finished_cores_leave_the_awake_list() {
        // A short trace finishes early; the awake-list must stop
        // stepping that core while the long trace keeps running.
        let long = mixed_trace(5, 3_000);
        let short: Vec<TraceOp> = vec![TraceOp::Compute(10)];
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(200));
        let result = sys.run(vec![long.iter().copied(), short.iter().copied()]);
        let steps = sys.core_step_counts();
        assert_eq!(result.per_core[1].instructions, 10);
        assert!(
            steps[1] * 50 < steps[0],
            "finished core must cost nothing: {steps:?}"
        );
    }

    #[test]
    fn wake_reasons_partition_event_driven_wakes() {
        let traces: Vec<Vec<TraceOp>> = (0..3).map(|c| mixed_trace(c * 11 + 2, 2_000)).collect();
        let run = |advance| {
            let mut sys = MultiCoreSystem::new(3, cfg(advance), FixedLatencyBackend::new(250));
            let result = sys.run(traces.iter().map(|t| t.iter().copied()).collect());
            (result, sys.wake_reasons(), sys.telemetry_snapshot())
        };
        let (fast, fast_wake, fast_snap) = run(Advance::ToNextEvent);
        let (reference, ref_wake, _) = run(Advance::PerCycle);
        assert_eq!(fast, reference, "attribution must not perturb results");
        assert_eq!(ref_wake, WakeReasons::default(), "per-cycle never sleeps");
        assert!(fast_wake.total() > 0, "memory-bound cores sleep and wake");
        assert!(fast_wake.completion > 0, "completions force-wake owners");
        assert_eq!(
            fast_snap.counter_prefix_sum("multicore.wake."),
            fast_snap.counter("multicore.wakes_total"),
            "buckets partition the wakes"
        );
        assert!(fast_snap.counter("multicore.core.steps") > 0);
    }

    #[test]
    fn series_reconciles_and_does_not_perturb() {
        let traces: Vec<Vec<TraceOp>> = (0..3).map(|c| mixed_trace(c * 13 + 5, 2_000)).collect();
        for advance in [Advance::ToNextEvent, Advance::PerCycle] {
            let run = |record: bool| {
                let mut sys = MultiCoreSystem::new(3, cfg(advance), FixedLatencyBackend::new(250));
                if record {
                    sys.enable_series(512);
                }
                let result = sys.run(traces.iter().map(|t| t.iter().copied()).collect());
                (result, sys.series_snapshot(), sys.telemetry_snapshot())
            };
            let (plain, no_series, _) = run(false);
            let (recorded, series, snap) = run(true);
            assert!(no_series.is_none(), "series is strictly opt-in");
            assert_eq!(plain, recorded, "{advance:?}: recording must not perturb");
            let series = series.expect("recording was enabled");
            assert!(
                series.reconciles_with(&snap),
                "{advance:?}: epoch sums must equal the aggregate snapshot"
            );
            // Per-core retired rows (no aggregate counterpart) must sum
            // to the merged instruction count.
            let retired: u64 = (0..3)
                .map(|i| series.row_total(&format!("multicore.core{i:02}.retired")))
                .sum();
            assert_eq!(retired, recorded.merged().instructions);
            if advance.is_event_driven() {
                assert!(series.row_total("multicore.wakes_total") > 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exactly one trace per core")]
    fn trace_count_must_match_core_count() {
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(10));
        let _ = sys.run(vec![std::iter::empty::<TraceOp>()]);
    }
}
