//! N OOO cores sharing one LLC and one memory backend behind a
//! next-event scheduler.
//!
//! [`MultiCoreSystem`] owns N [`CoreEngine`]s (each a private ROB, L1D
//! and stream prefetcher — the machinery extracted from `CpuSystem`),
//! one shared LLC, and one [`MemoryBackend`]. The backend is ticked once
//! per simulated cycle and its completed read tokens are routed to their
//! owning cores, so the backend is oblivious to the core count — exactly
//! the seam `ShardedEngine` already presents to a single core, which is
//! what makes cores × channels compose (`MultiCoreSystem<ShardedEngine>`
//! works unchanged).
//!
//! # Scheduling
//!
//! The top-level advance mirrors the sharded backend's shard scheduler
//! one layer up. Under [`sim_kernel::Advance::ToNextEvent`], a core whose
//! step made no progress computes its memoized wake-up bound (the same
//! bound the single-core run loop skips on) and goes to sleep; sleeping
//! cores are registered in a [`sim_kernel::EventQueue`] min-heap with
//! lazy staleness filtering, and only *due* cores step. When every
//! unfinished core is asleep the global clock jumps to the earliest
//! registered wake-up, so whole-system idle windows cost one heap peek.
//!
//! Bounds are computed against the shared backend through a read-only
//! *routed view*: completion bounds are filtered to the sleeping core's
//! own outstanding read tokens
//! ([`cpu_model::MemoryBackend::next_completion_event_among`]), so a
//! core waiting on its pointer-chase miss no longer wakes every time
//! *any* core's read returns — with N cores that was ~N spurious
//! wake-ups per real event. Queue-space bounds stay global (capacity is
//! shared). Another core's *accepted submission* can still invalidate a
//! registered bound (it can advance write-drain state or consume queue
//! capacity in ways the sleeping core's bound did not see). After any
//! cycle in which some core submitted, the scheduler therefore
//! re-derives every sleeping core's bound against the mutated backend,
//! keeping the earlier of the two (a spuriously early wake-up merely
//! re-probes; a late one could miss an event). During all-asleep windows
//! nothing submits, so the registered bounds stay valid and the global
//! jump is sound — results are bit-identical to
//! [`sim_kernel::Advance::PerCycle`], where every core steps every cycle.

use cpu_model::exec::CoreEngine;
use cpu_model::system::{AccessKind, BatchAccess, Busy, MemoryBackend};
use cpu_model::{Cache, CacheConfig, CacheStats, CpuConfig, SimResult, TraceOp};
use sim_kernel::{EventQueue, FxHashMap, SimClock};

/// Forwards one core's backend traffic to the shared backend, recording
/// which core owns each accepted read token so completions can be routed
/// back. Cores never tick the shared backend — the scheduler does, once
/// per cycle.
struct RoutedBackend<'a, B> {
    inner: &'a mut B,
    token_core: &'a mut FxHashMap<u64, usize>,
    core: usize,
}

impl<B: MemoryBackend> MemoryBackend for RoutedBackend<'_, B> {
    fn submit(
        &mut self,
        kind: AccessKind,
        addr: u64,
        now: u64,
        is_prefetch: bool,
    ) -> Result<u64, Busy> {
        let token = self.inner.submit(kind, addr, now, is_prefetch)?;
        if kind == AccessKind::Read {
            self.token_core.insert(token, self.core);
        }
        Ok(token)
    }

    fn submit_batch(
        &mut self,
        batch: &[BatchAccess],
        now: u64,
        results: &mut Vec<Result<u64, Busy>>,
    ) {
        let start = results.len();
        self.inner.submit_batch(batch, now, results);
        for (access, result) in batch.iter().zip(&results[start..]) {
            if access.kind == AccessKind::Read {
                if let Ok(token) = result {
                    self.token_core.insert(*token, self.core);
                }
            }
        }
    }

    fn tick(&mut self, _now: u64) -> Vec<u64> {
        unreachable!("cores never tick the shared backend; the scheduler does")
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.inner.next_event(now)
    }

    fn next_completion_event(&self, now: u64) -> Option<u64> {
        self.inner.next_completion_event(now)
    }

    fn next_read_capacity_event(&self, now: u64, addr: u64) -> Option<u64> {
        self.inner.next_read_capacity_event(now, addr)
    }
}

/// Read-only routed view for *bound* computation: completion bounds are
/// filtered to the viewing core's own outstanding read tokens, so a core
/// sleeping on a pure completion wait registers its own earliest
/// completion instead of the shared backend's global bound (another
/// core's read returning cannot make this core's per-cycle step do
/// anything). Queue-space bounds (`next_event`,
/// `next_read_capacity_event`) stay global — capacity is shared.
struct RoutedView<'a, B> {
    inner: &'a B,
    /// The viewing core's outstanding read tokens (a snapshot of its
    /// MSHR population, collected into the scheduler's scratch buffer
    /// just before the bound probe).
    tokens: &'a [u64],
}

impl<B: MemoryBackend> MemoryBackend for RoutedView<'_, B> {
    fn submit(&mut self, _: AccessKind, _: u64, _: u64, _: bool) -> Result<u64, Busy> {
        unreachable!("RoutedView is a read-only bound probe")
    }

    fn tick(&mut self, _now: u64) -> Vec<u64> {
        unreachable!("RoutedView is a read-only bound probe")
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.inner.next_event(now)
    }

    fn next_completion_event(&self, now: u64) -> Option<u64> {
        self.inner
            .next_completion_event_among(now, &mut self.tokens.iter().copied())
    }

    fn next_read_capacity_event(&self, now: u64, addr: u64) -> Option<u64> {
        self.inner.next_read_capacity_event(now, addr)
    }
}

/// Per-core and aggregate results of one [`MultiCoreSystem::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCoreResult {
    /// One [`SimResult`] per core, in core-index order. A core's
    /// `cycles` is the cycle it drained (finished its trace, ROB, and
    /// outstanding misses).
    pub per_core: Vec<SimResult>,
}

impl MultiCoreResult {
    /// All cores folded into one [`SimResult`] via [`SimResult::merge`]:
    /// counters sum, cache statistics merge, `cycles` is the slowest
    /// core's finish cycle.
    ///
    /// # Panics
    ///
    /// Panics when there are no cores (a [`MultiCoreSystem`] always has
    /// at least one).
    #[must_use]
    pub fn merged(&self) -> SimResult {
        let (first, rest) = self.per_core.split_first().expect("at least one core ran");
        let mut merged = first.clone();
        for r in rest {
            merged.merge(r);
        }
        merged
    }

    /// Aggregate IPC: the sum of per-core IPCs (the rate-mode throughput
    /// metric — N cores each at the single-core IPC score N× the
    /// aggregate).
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        self.per_core.iter().map(SimResult::ipc).sum()
    }

    /// Weighted speedup against per-core stand-alone baselines:
    /// `Σ_i IPC_i^shared / IPC_i^alone`. Equals the core count when
    /// sharing costs nothing; lower values quantify LLC and memory
    /// contention.
    ///
    /// # Panics
    ///
    /// Panics when `alone_ipc` does not have one (positive) entry per
    /// core.
    #[must_use]
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(
            alone_ipc.len(),
            self.per_core.len(),
            "one stand-alone IPC per core"
        );
        self.per_core
            .iter()
            .zip(alone_ipc)
            .map(|(r, &alone)| {
                assert!(alone > 0.0, "stand-alone IPC must be positive");
                r.ipc() / alone
            })
            .sum()
    }
}

/// N OOO cores over one shared LLC and one shared [`MemoryBackend`],
/// interleaved by next-event time.
#[derive(Debug)]
pub struct MultiCoreSystem<B> {
    cfg: CpuConfig,
    backend: B,
    llc: Cache,
    cores: Vec<CoreEngine>,
    clock: SimClock,
    /// Accepted read token → owning core, for completion routing.
    token_core: FxHashMap<u64, usize>,
    /// Times each core was actually stepped (diagnostic for the
    /// per-core completion-bound win: spurious wake-ups step a core to
    /// no effect, so fewer steps at identical results is the measure).
    core_steps: Vec<u64>,
}

impl<B: MemoryBackend> MultiCoreSystem<B> {
    /// Builds `cores` identical cores (Table I parameters from `cfg`)
    /// over one Table I shared LLC and `backend`.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero.
    pub fn new(cores: usize, cfg: CpuConfig, backend: B) -> Self {
        assert!(cores >= 1, "at least one core is required");
        Self {
            backend,
            llc: Cache::new(CacheConfig::llc()),
            cores: (0..cores).map(|_| CoreEngine::new(cfg)).collect(),
            clock: SimClock::new(),
            token_core: FxHashMap::default(),
            core_steps: vec![0; cores],
            cfg,
        }
    }

    /// How many cycles each core was actually stepped. Under the
    /// event-driven policy a sleeping core skips its due-nothing cycles,
    /// so this counts real work plus any spurious wake-ups — the
    /// quantity the per-core completion bounds shrink.
    #[must_use]
    pub fn core_step_counts(&self) -> &[u64] {
        &self.core_steps
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Read access to the shared backend (for engine statistics).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the shared backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The shared LLC's own statistics (the per-core shares in
    /// [`MultiCoreResult::per_core`] sum to exactly these totals).
    #[must_use]
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// Runs one trace per core to completion (all cores drained) and
    /// returns per-core plus aggregate results.
    ///
    /// Calling `run` again continues cumulatively: the clock keeps
    /// advancing, the shared LLC and per-core caches stay warm, and
    /// counters accumulate across runs (the single-core `CpuSystem`
    /// re-run semantics, per core).
    ///
    /// # Panics
    ///
    /// Panics when `traces` does not hold exactly one trace per core.
    pub fn run<T: Iterator<Item = TraceOp>>(&mut self, mut traces: Vec<T>) -> MultiCoreResult {
        let n = self.cores.len();
        assert_eq!(traces.len(), n, "exactly one trace per core");
        for core in &mut self.cores {
            core.begin_trace();
        }
        let event_driven = self.cfg.advance.is_event_driven();
        let Self {
            backend,
            llc,
            cores,
            clock,
            token_core,
            core_steps,
            ..
        } = self;

        // A core is either awake (steps every cycle) or asleep with a
        // registered wake-up bound; `heap` holds `(bound, core)` entries,
        // lazily filtered against `bounds` like the shard scheduler.
        let mut awake = vec![true; n];
        let mut bounds = vec![0u64; n];
        let mut heap: EventQueue<usize> = EventQueue::new();
        let mut routed: Vec<Vec<u64>> = vec![Vec::new(); n];
        // Reused snapshot of one core's outstanding read tokens for the
        // filtered completion-bound probes.
        let mut token_scratch: Vec<u64> = Vec::new();

        loop {
            // Global jump: when every unfinished core is asleep, nothing
            // can submit, so the registered bounds stay valid and the
            // clock can skip to the earliest one.
            if event_driven
                && cores
                    .iter()
                    .enumerate()
                    .all(|(i, c)| c.finished() || !awake[i])
            {
                if let Some(wake) = earliest_wake(&mut heap, &bounds, &awake, cores) {
                    if wake > clock.now() + 1 {
                        clock.skip_to(wake - 1);
                    }
                }
            }
            let now = clock.tick();

            // Drop spent heap entries eagerly: anything at or before
            // `now` is either this cycle's wake-up (its core is woken by
            // the `bounds` check below and re-registers on its next
            // sleep) or stale (superseded by an earlier refresh), and
            // `earliest_wake` only ever needs future entries — without
            // this the push-only heap would grow for the whole run
            // whenever some core never sleeps.
            while heap.pop_due(now).is_some() {}

            // One backend tick per cycle; completions are routed to their
            // owning cores and force-wake them (their state changes, so
            // any registered bound is moot).
            for v in &mut routed {
                v.clear();
            }
            for token in backend.tick(now) {
                if let Some(core) = token_core.remove(&token) {
                    routed[core].push(token);
                }
            }

            let mut any_submitted = false;
            let mut all_finished = true;
            for i in 0..n {
                if cores[i].finished() {
                    continue;
                }
                let was_asleep = !awake[i];
                if was_asleep && bounds[i] > now && routed[i].is_empty() {
                    // Asleep and not due: the per-cycle reference would
                    // provably do nothing for this core this cycle.
                    all_finished = false;
                    continue;
                }
                awake[i] = true;
                core_steps[i] += 1;
                let outcome = {
                    let mut port = RoutedBackend {
                        inner: &mut *backend,
                        token_core: &mut *token_core,
                        core: i,
                    };
                    cores[i].step(now, llc, &mut port, &mut traces[i], &routed[i])
                };
                any_submitted |= outcome.submitted;
                if outcome.finished {
                    continue;
                }
                all_finished = false;
                if event_driven {
                    // Bounds are computed through a read-only routed
                    // view, so a pure completion wait registers this
                    // core's own earliest completion (filtered by token
                    // ownership) instead of the shared backend's global
                    // bound — another core's read returning no longer
                    // wakes this core at all. A core woken *from sleep*
                    // re-sleeps on the raw bound: residual wake-ups
                    // (shared in-flight channel bounds) would otherwise
                    // trip the single-core backoff heuristic into
                    // per-cycle stepping; one ungated O(1) probe per
                    // wake-up is the right cost. A core that was already
                    // awake (actively running) keeps the streak/backoff
                    // gating. Neither choice affects simulated results.
                    token_scratch.clear();
                    token_scratch.extend(cores[i].outstanding_read_tokens());
                    let view = RoutedView {
                        inner: &*backend,
                        tokens: &token_scratch,
                    };
                    let wake = if was_asleep {
                        cores[i].wake_bound(now, &view)
                    } else {
                        cores[i].sleep_bound(now, &view)
                    };
                    if let Some(wake) = wake {
                        if wake > now + 1 {
                            awake[i] = false;
                            bounds[i] = wake;
                            heap.push(wake, i);
                        }
                    }
                }
            }
            if all_finished {
                break;
            }

            // An accepted submission mutated the backend, so bounds the
            // sleeping cores computed against the old state may now be
            // too late; re-derive them, keeping the earlier bound.
            if event_driven && any_submitted {
                for i in 0..n {
                    if cores[i].finished() || awake[i] {
                        continue;
                    }
                    token_scratch.clear();
                    token_scratch.extend(cores[i].outstanding_read_tokens());
                    let view = RoutedView {
                        inner: &*backend,
                        tokens: &token_scratch,
                    };
                    let refreshed = cores[i].wake_bound(now, &view).unwrap_or(now + 1);
                    if refreshed < bounds[i] {
                        bounds[i] = refreshed;
                        heap.push(refreshed, i);
                    }
                }
            }
        }

        MultiCoreResult {
            per_core: cores.iter().map(CoreEngine::result).collect(),
        }
    }
}

/// The earliest registered wake-up among sleeping cores, dropping stale
/// heap entries (a core re-registered earlier, woke, or finished) on the
/// way. The returned entry is pushed back so later calls still see it.
fn earliest_wake(
    heap: &mut EventQueue<usize>,
    bounds: &[u64],
    awake: &[bool],
    cores: &[CoreEngine],
) -> Option<u64> {
    while let Some((at, i)) = heap.pop_due(u64::MAX) {
        if !awake[i] && !cores[i].finished() && bounds[i] == at {
            heap.push(at, i);
            return Some(at);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AddressSpace, CoreTrace};
    use cpu_model::{Advance, CpuSystem, FixedLatencyBackend};
    use std::sync::Arc;

    fn mixed_trace(seed: u64, len: u64) -> Vec<TraceOp> {
        (0..len)
            .map(|i| {
                let x = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
                match x % 5 {
                    0 => TraceOp::Compute((x % 40) as u32 + 1),
                    1 => TraceOp::Load((x << 3) & 0xFFF_FFC0),
                    2 => TraceOp::DependentLoad((x << 4) & 0xFFF_FFC0),
                    3 => TraceOp::Store((x << 3) & 0xFFF_FFC0),
                    _ => TraceOp::Load((x % 2048) * 64),
                }
            })
            .collect()
    }

    fn cfg(advance: Advance) -> CpuConfig {
        CpuConfig {
            advance,
            ..CpuConfig::default()
        }
    }

    #[test]
    fn single_core_matches_cpusystem() {
        let trace = mixed_trace(0xA5, 3_000);
        for advance in [Advance::ToNextEvent, Advance::PerCycle] {
            let single = CpuSystem::new(cfg(advance), FixedLatencyBackend::new(180))
                .run(trace.iter().copied());
            let mut multi = MultiCoreSystem::new(1, cfg(advance), FixedLatencyBackend::new(180));
            let result = multi.run(vec![trace.iter().copied()]);
            assert_eq!(result.per_core.len(), 1);
            assert_eq!(result.per_core[0], single, "{advance:?}");
            assert_eq!(result.merged(), single, "{advance:?}");
        }
    }

    #[test]
    fn event_driven_matches_per_cycle() {
        let traces: Vec<Vec<TraceOp>> = (0..3).map(|c| mixed_trace(c * 7 + 1, 2_000)).collect();
        let run = |advance| {
            let mut sys = MultiCoreSystem::new(3, cfg(advance), FixedLatencyBackend::new(250));
            sys.run(traces.iter().map(|t| t.iter().copied()).collect())
        };
        assert_eq!(run(Advance::ToNextEvent), run(Advance::PerCycle));
    }

    #[test]
    fn rate_mode_retires_every_copy() {
        let trace = Arc::new(mixed_trace(3, 2_000));
        let per_copy: u64 = trace.iter().map(TraceOp::instructions).sum();
        let mut sys =
            MultiCoreSystem::new(4, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(200));
        let result = sys.run(CoreTrace::rate(&trace, 1 << 32, 4));
        assert_eq!(result.per_core.len(), 4);
        for r in &result.per_core {
            assert_eq!(r.instructions, per_copy);
        }
        assert_eq!(result.merged().instructions, 4 * per_copy);
        assert_eq!(
            result.merged().cycles,
            result.per_core.iter().map(|r| r.cycles).max().unwrap()
        );
    }

    #[test]
    fn per_core_llc_shares_sum_to_shared_totals() {
        let trace = Arc::new(mixed_trace(11, 3_000));
        let mut sys =
            MultiCoreSystem::new(4, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(150));
        let result = sys.run(CoreTrace::rate(&trace, 1 << 32, 4));
        let merged = result.merged();
        assert_eq!(&merged.llc, sys.llc_stats());
        assert!(merged.llc.misses > 0);
    }

    #[test]
    fn compute_only_cores_do_not_interfere() {
        // No memory traffic: each core's run is as long as it would be
        // alone, and the scheduler still terminates via the global jump.
        let trace: Vec<TraceOp> = (0..200).map(|_| TraceOp::Compute(60)).collect();
        let alone = CpuSystem::new(cfg(Advance::ToNextEvent), FixedLatencyBackend::new(100))
            .run(trace.iter().copied());
        let mut sys =
            MultiCoreSystem::new(4, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(100));
        let result = sys.run((0..4).map(|_| trace.iter().copied()).collect());
        for r in &result.per_core {
            assert_eq!(r.cycles, alone.cycles);
            assert_eq!(r.instructions, alone.instructions);
        }
    }

    #[test]
    fn heterogeneous_mix_produces_per_core_results() {
        let a = Arc::new(mixed_trace(1, 1_500));
        let b = Arc::new((0..500).map(|_| TraceOp::Compute(50)).collect::<Vec<_>>());
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(220));
        let result = sys.run(CoreTrace::mix(
            vec![Arc::clone(&a), Arc::clone(&b)],
            1 << 32,
        ));
        let ia: u64 = a.iter().map(TraceOp::instructions).sum();
        let ib: u64 = b.iter().map(TraceOp::instructions).sum();
        assert_eq!(result.per_core[0].instructions, ia);
        assert_eq!(result.per_core[1].instructions, ib);
        assert!(result.per_core[1].ipc() > result.per_core[0].ipc());
    }

    #[test]
    fn metric_accessors() {
        let result = MultiCoreResult {
            per_core: vec![
                SimResult {
                    instructions: 100,
                    cycles: 100,
                    l1: CacheStats::default(),
                    llc: CacheStats::default(),
                    prefetches: 0,
                },
                SimResult {
                    instructions: 300,
                    cycles: 100,
                    l1: CacheStats::default(),
                    llc: CacheStats::default(),
                    prefetches: 0,
                },
            ],
        };
        assert!((result.aggregate_ipc() - 4.0).abs() < 1e-12);
        // Cores alone ran at IPC 2 and 4: weighted speedup 0.5 + 0.75.
        assert!((result.weighted_speedup(&[2.0, 4.0]) - 1.25).abs() < 1e-12);
        assert!((result.merged().ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn identity_address_space_shares_lines_across_cores() {
        // Core 0 fetches a line; core 1 touches the same trace address
        // much later (after a long compute ramp). With the identity
        // disambiguator core 1 hits the line core 0 installed in the
        // shared LLC; with per-core windows the addresses are disjoint
        // and both cores miss.
        let early = Arc::new(vec![TraceOp::Load(0x40_0000)]);
        let late = Arc::new(vec![TraceOp::Compute(6_000), TraceOp::Load(0x40_0000)]);
        let misses_with = |space: AddressSpace| {
            let mut sys =
                MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(100));
            let traces = vec![
                CoreTrace::new(Arc::clone(&early), 0, space),
                CoreTrace::new(Arc::clone(&late), 1, space),
            ];
            sys.run(traces).merged().llc.misses
        };
        assert_eq!(misses_with(AddressSpace::identity()), 1);
        assert_eq!(misses_with(AddressSpace::windows(1 << 32, 2)), 2);
    }

    #[test]
    fn second_run_continues_cumulatively() {
        let trace = Arc::new(mixed_trace(9, 800));
        let per_copy: u64 = trace.iter().map(TraceOp::instructions).sum();
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(150));
        let r1 = sys.run(CoreTrace::rate(&trace, 1 << 32, 2));
        let r2 = sys.run(CoreTrace::rate(&trace, 1 << 32, 2));
        for (a, b) in r1.per_core.iter().zip(&r2.per_core) {
            assert_eq!(a.instructions, per_copy);
            assert_eq!(b.instructions, 2 * per_copy, "counters accumulate");
            assert!(b.cycles > a.cycles, "clock keeps advancing");
        }
    }

    #[test]
    fn sleeping_core_ignores_other_cores_completions() {
        // Core 0 streams memory misses (completions land nearly every
        // cycle once its pipeline fills); core 1 walks a serialized
        // pointer chase, sleeping ~latency cycles per link. With
        // per-core completion bounds, core 1's sleeps are not punctured
        // by core 0's completion stream — its steps stay proportional
        // to its own chain, not to core 0's traffic. The global bound
        // would have woken it once per core-0 completion, degrading it
        // to near-per-cycle stepping.
        let heavy: Vec<TraceOp> = (0..2_000).map(|i| TraceOp::Load(i * 64 * 7)).collect();
        let chase: Vec<TraceOp> = (0..30)
            .map(|i| TraceOp::DependentLoad(0x900_0000 + i * 64 * 129))
            .collect();
        let run = |advance| {
            let mut sys = MultiCoreSystem::new(2, cfg(advance), FixedLatencyBackend::new(300));
            let result = sys.run(vec![heavy.iter().copied(), chase.iter().copied()]);
            (result, sys.core_step_counts().to_vec())
        };
        let (fast, fast_steps) = run(Advance::ToNextEvent);
        let (reference, ref_steps) = run(Advance::PerCycle);
        assert_eq!(fast, reference, "filtered bounds must not change results");
        assert!(
            fast_steps[1] * 10 < ref_steps[1],
            "chasing core barely steps under per-core bounds: {fast_steps:?} vs {ref_steps:?}"
        );
    }

    #[test]
    #[should_panic(expected = "exactly one trace per core")]
    fn trace_count_must_match_core_count() {
        let mut sys =
            MultiCoreSystem::new(2, cfg(Advance::ToNextEvent), FixedLatencyBackend::new(10));
        let _ = sys.run(vec![std::iter::empty::<TraceOp>()]);
    }
}
