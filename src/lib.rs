//! SecDDR reproduction — facade crate.
//!
//! This crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`core`](secddr_core) — security engines, full-system simulator,
//!   security analysis (the paper's contribution).
//! * [`functional`] — byte-accurate protocol model: E-MAC channel, eWCRC,
//!   attacker interposers, attestation.
//! * [`crypto`] — AES-128/CTR/XTS, CMAC, SHA-256, CRC-16, DH, power model.
//! * [`dram`] — cycle-level DDR4 channel simulator.
//! * [`cpu`] — trace-driven OOO core + cache hierarchy.
//! * [`channels`] — sharded multi-channel memory subsystem: N
//!   interleaved SecDDR channels behind one `MemoryBackend`.
//! * [`multicore`] — multi-core front-end: N OOO cores sharing the LLC
//!   and memory engine behind one next-event scheduler (the paper's
//!   4-core rate mode).
//! * [`service`] — the resident experiment service: a long-running job
//!   server (`secddr-serve`) that queues [`JobSpec`]s on a persistent
//!   worker pool and streams per-cell results, in-process or over
//!   line-delimited-JSON TCP.
//! * [`fleet`] — the fleet layer over the service: durable write-ahead
//!   job log, multi-worker dispatcher (`secddr-dispatch`) with
//!   least-loaded placement and requeue-on-worker-death, and
//!   whole-result memoization keyed by canonical spec hash.
//! * [`telemetry`] — cross-layer observability: the metrics registry,
//!   deterministic mergeable snapshots, and the span ring buffer +
//!   `chrome://tracing` timeline exporter.
//! * [`workloads`] — the 29 benchmarks of the paper's evaluation.
//! * [`kernel`] — the event-driven simulation kernel all timing layers
//!   ride ([`SimClock`](sim_kernel::SimClock), event queue, and the
//!   [`Advance`] idle-skip policy with per-cycle-identical results).
//!
//! # Example
//!
//! ```
//! use secddr::functional::{EncryptionMode, SecureChannel};
//!
//! let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 1);
//! ch.write(0x40, &[7u8; 64]);
//! assert_eq!(ch.read(0x40).unwrap(), [7u8; 64]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cpu_model as cpu;
pub use dimm_model as functional;
pub use dram_sim as dram;
pub use secddr_channels as channels;
pub use secddr_core as core;
pub use secddr_crypto as crypto;
pub use secddr_fleet as fleet;
pub use secddr_multicore as multicore;
pub use secddr_service as service;
pub use secddr_telemetry as telemetry;
pub use sim_kernel as kernel;
pub use workloads;

pub use secddr_channels::{ChannelStats, Interleave, ShardedEngine};
pub use secddr_core::config::SecurityConfig;
pub use secddr_core::system::{run_benchmark, RunParams};
pub use secddr_fleet::{Dispatcher, DispatcherConfig, FleetServer, JobLog, ResultStore};
pub use secddr_multicore::{AddressSpace, CoreTrace, MultiCoreResult, MultiCoreSystem};
pub use secddr_service::{
    ExperimentServer, ExperimentService, JobEvent, JobHandle, JobSpec, ServiceClient,
};
pub use secddr_telemetry::{Registry, SeriesSnapshot, TelemetrySnapshot, TraceSink};
pub use sim_kernel::Advance;
