//! Multi-core front-end in a few lines: N OOO cores sharing one LLC and
//! one 4-channel SecDDR memory system.
//!
//! Runs the paper's 4-core *rate* mode (four copies of one benchmark,
//! each relocated into its own address window of the 10 GiB data span)
//! and one heterogeneous mix, printing per-core IPC, aggregate IPC, and
//! weighted speedup against each benchmark running alone on the same
//! memory system. The single-core run is asserted bit-identical to the
//! bare `CpuSystem` — the multi-core scheduler costs nothing at N=1.
//!
//! Run with: `cargo run --release --example multicore`
//! (`SECDDR_INSTRS` overrides the per-core instruction budget.)

use std::sync::Arc;

use secddr::core::config::SecurityConfig;
use secddr::core::metadata::DATA_SPAN;
use secddr::cpu::{CpuConfig, CpuSystem, TraceOp};
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, Interleave, MultiCoreSystem, ShardedEngine};

const CHANNELS: usize = 4;

fn engine(cfg: SecurityConfig, cpu_cfg: CpuConfig) -> ShardedEngine {
    ShardedEngine::new(cfg, cpu_cfg.clock_mhz, Interleave::xor(CHANNELS))
}

/// One benchmark running alone (one core, same shared memory system):
/// the baseline of the weighted-speedup metric and of the N=1 bit-
/// identity assert.
fn run_alone(
    trace: &Arc<Vec<TraceOp>>,
    cfg: SecurityConfig,
    cpu_cfg: CpuConfig,
) -> secddr::cpu::SimResult {
    let mut sys = CpuSystem::new(cpu_cfg, engine(cfg, cpu_cfg));
    let mut streams = CoreTrace::rate(trace, DATA_SPAN, 1);
    sys.run(streams.remove(0))
}

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let cfg = SecurityConfig::secddr_ctr();
    let cpu_cfg = CpuConfig::default();

    println!("== multi-core front-end over {CHANNELS} SecDDR channels ==\n");

    // ---- Rate mode: N copies of one benchmark, disjoint windows. ----
    let bench = Benchmark::by_name("mcf").expect("known benchmark");
    let trace = bench.generate_shared(instructions, 0xD5);
    println!(
        "rate mode: {} x {} instructions, config {}\n",
        bench.name(),
        instructions,
        cfg.label()
    );

    let alone = run_alone(&trace, cfg, cpu_cfg);
    let single = alone.ipc();
    for n in [1usize, 2, 4] {
        let mut sys = MultiCoreSystem::new(n, cpu_cfg, engine(cfg, cpu_cfg));
        let result = sys.run(CoreTrace::rate(&trace, DATA_SPAN, n));
        let per_core: Vec<String> = result
            .per_core
            .iter()
            .map(|r| format!("{:.3}", r.ipc()))
            .collect();
        println!(
            "{n} core{}   per-core ipc [{}]  aggregate ipc {:.3}  weighted speedup {:.2}",
            if n == 1 { " " } else { "s" },
            per_core.join(", "),
            result.aggregate_ipc(),
            result.weighted_speedup(&vec![single; n]),
        );
        if n == 1 {
            // One core through the multi-core scheduler is the bare
            // CpuSystem, observationally.
            assert_eq!(
                result.per_core[0], alone,
                "N=1 must match the bare CpuSystem"
            );
            println!("          (asserted bit-identical to the bare CpuSystem)");
        }
    }

    // ---- Heterogeneous mix: a different benchmark per core. ----
    let names = ["mcf", "omnetpp", "gcc", "povray"];
    println!("\nheterogeneous mix: {names:?}\n");
    let traces: Vec<Arc<Vec<TraceOp>>> = names
        .iter()
        .map(|n| {
            Benchmark::by_name(n)
                .expect("known benchmark")
                .generate_shared(instructions, 0xD5)
        })
        .collect();
    let alone: Vec<f64> = traces
        .iter()
        .map(|t| run_alone(t, cfg, cpu_cfg).ipc())
        .collect();
    let mut sys = MultiCoreSystem::new(names.len(), cpu_cfg, engine(cfg, cpu_cfg));
    let result = sys.run(CoreTrace::mix(traces, DATA_SPAN));
    for (i, name) in names.iter().enumerate() {
        println!(
            "core {i} ({name:>8})   ipc {:.3}  (alone {:.3})",
            result.per_core[i].ipc(),
            alone[i],
        );
    }
    println!(
        "aggregate ipc {:.3}  weighted speedup {:.2}  merged llc miss rate {:.3}",
        result.aggregate_ipc(),
        result.weighted_speedup(&alone),
        result.merged().llc.miss_rate(),
    );

    println!(
        "\nEach core is a full OOO pipeline (ROB, L1D, stream prefetcher)\n\
         from the extracted CoreEngine; all cores share one LLC and one\n\
         sharded memory engine through the MemoryBackend seam. The\n\
         scheduler steps only cores whose next-event bound is due — a\n\
         long-stalled core costs nothing while its neighbours run."
    );
}
