//! Scratch A/B harness (not committed).
use secddr::core::config::SecurityConfig;
use secddr::core::system::{run_benchmark_with_advance, RunParams};
use secddr::dram::Advance;
use secddr::workloads::Benchmark;
use std::time::Instant;

fn main() {
    let params = RunParams {
        instructions: 40_000,
        seed: 213,
    };
    let _ = Benchmark::by_name("pr").unwrap().generate(1_000, 0);
    let mut tot_f = 0.0;
    let mut tot_r = 0.0;
    println!(
        "{:<12} {:>9} {:>9} {:>7}",
        "bench", "fast_ms", "ref_ms", "ratio"
    );
    for bench in Benchmark::all() {
        let mut f_ms = 0.0;
        let mut r_ms = 0.0;
        for cfg in [
            SecurityConfig::tdx_baseline(),
            SecurityConfig::tree_64ary(),
            SecurityConfig::secddr_ctr(),
        ] {
            let t0 = Instant::now();
            let fast = run_benchmark_with_advance(&bench, &cfg, &params, Advance::ToNextEvent);
            f_ms += t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let refr = run_benchmark_with_advance(&bench, &cfg, &params, Advance::PerCycle);
            r_ms += t1.elapsed().as_secs_f64() * 1e3;
            assert_eq!(fast.sim, refr.sim);
        }
        tot_f += f_ms;
        tot_r += r_ms;
        println!(
            "{:<12} {f_ms:>9.1} {r_ms:>9.1} {:>7.2}",
            bench.name(),
            r_ms / f_ms
        );
    }
    println!(
        "TOTAL fast {tot_f:.0}ms ref {tot_r:.0}ms ratio {:.2}",
        tot_r / tot_f
    );
}
