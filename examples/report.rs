//! The bottleneck-attribution report for the ROADMAP's open n8/n16
//! question: the `multicore_rate_n16` shape (16 cores in rate mode over
//! a 4-channel SecDDR `ShardedEngine`, pointer-chase trace) run with
//! sim-time series recording on, then `telemetry::report::render`
//! printing which decision cause dominates each phase, when
//! anti-starvation aging sets in, how evenly the channels share the
//! issue load, and which way queue pressure trends.
//!
//! The series is also exported as `report_series.csv` (wide form, one
//! row per counter, one column per epoch) for offline plotting.
//!
//! Run with: `cargo run --release --example report`
//! (`SECDDR_INSTRS` overrides the instruction budget, `SECDDR_CORES`
//! the core count, `SECDDR_CSV_OUT` the CSV path.)

use secddr::core::config::SecurityConfig;
use secddr::core::metadata::DATA_SPAN;
use secddr::cpu::CpuConfig;
use secddr::telemetry::report;
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, Interleave, MultiCoreSystem, Registry, ShardedEngine};

const CHANNELS: usize = 4;
const PHASES: usize = 4;

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let cores: usize = std::env::var("SECDDR_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let csv_path =
        std::env::var("SECDDR_CSV_OUT").unwrap_or_else(|_| "report_series.csv".to_string());
    let epoch_width = (instructions * 2).max(2_048);

    // ---- The multicore_rate_n16 shape with series recording on. ----
    let cfg = SecurityConfig::secddr_ctr();
    let cpu_cfg = CpuConfig::default();
    let mut engine = ShardedEngine::new(cfg, cpu_cfg.clock_mhz, Interleave::xor(CHANNELS));
    engine.enable_series(epoch_width);
    let mut sys = MultiCoreSystem::new(cores, cpu_cfg, engine);
    sys.enable_series(epoch_width);

    let bench = Benchmark::by_name("mcf").expect("known benchmark");
    let trace = bench.generate_shared(instructions, 0xD5);
    println!(
        "== report: {cores} x {} ({instructions} instructions) over {CHANNELS} channels ==\n",
        bench.name()
    );
    let result = sys.run(CoreTrace::rate(&trace, DATA_SPAN, cores));
    println!(
        "aggregate ipc {:.3} over {} cycles\n",
        result.aggregate_ipc(),
        result.merged().cycles
    );

    // ---- Reconcile the series against the aggregate, then report. ----
    let mut snap = sys.telemetry_snapshot();
    sys.backend_mut().dram_telemetry().render_into(&mut snap);
    snap.merge(&Registry::global().snapshot());
    let mut series = sys
        .backend_mut()
        .series_snapshot()
        .expect("series was enabled on the backend");
    series.merge(&sys.series_snapshot().expect("series was enabled"));
    assert!(
        series.reconciles_with(&snap),
        "per-epoch series sums must reconcile with the aggregate snapshot"
    );

    print!("{}", report::render(&series, PHASES));

    let summaries = report::phase_summaries(&series, PHASES);
    assert!(
        summaries.iter().any(|p| !p.dominant_cause.is_empty()),
        "the report must name a dominant decision cause"
    );

    std::fs::write(&csv_path, series.to_csv()).expect("write the series CSV");
    println!(
        "\nwrote {csv_path}: {} rows x {} epochs of {} cycles",
        series.rows.len(),
        series.epochs(),
        series.epoch_width
    );
}
