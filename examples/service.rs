//! The experiment service end to end: submit two jobs over TCP, stream
//! both event streams as they interleave, prove the warm trace-cache
//! hit, and shut the server down cleanly.
//!
//! Two modes:
//!
//! * `SECDDR_SERVE_ADDR=host:port` — connect to an already-running
//!   `secddr-serve` (what CI does: it launches the binary on a loopback
//!   port, runs this example against it, and gates on the server's
//!   clean exit after the shutdown command this example sends);
//! * unset — spin up an in-process server on an ephemeral port, so
//!   `cargo run --release --example service` works stand-alone.
//!
//! Run with: `cargo run --release --example service`
//! (`SECDDR_INSTRS` overrides the instruction budget.)

use secddr::core::config::SecurityConfig;
use secddr::service::{ExperimentServer, ExperimentService, JobSpec, ServiceClient, WireEvent};

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);

    // ---- Reach a server: external (CI) or in-process (stand-alone). ----
    let external = std::env::var("SECDDR_SERVE_ADDR").ok();
    let (addr, local_server) = match &external {
        Some(addr) => {
            println!("connecting to external secddr-serve at {addr}");
            (addr.clone(), None)
        }
        None => {
            let server = ExperimentServer::bind("127.0.0.1:0", ExperimentService::with_threads(2))
                .expect("bind an ephemeral loopback port");
            let addr = server.local_addr().expect("bound address").to_string();
            println!("started in-process server on {addr}");
            (addr, Some(std::thread::spawn(move || server.serve())))
        }
    };
    let mut client = ServiceClient::connect(&addr).expect("connect to the server");

    // ---- Job A: the paper's 4-core rate mode over 4 channels, with
    // sim-time series recording on. ----
    let mut rate = JobSpec::bench("mcf");
    rate.cores = 4;
    rate.channels = 4;
    rate.instructions = instructions;
    rate.epoch_width = (instructions * 2).max(2_048);
    let rate_job = client.submit(&rate).expect("submit rate job");

    // ---- Job B: a single-core configuration sweep. ----
    let mut sweep = JobSpec::bench("omnetpp");
    sweep.configs = vec![
        SecurityConfig::tdx_baseline(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::tree_64ary(),
    ];
    sweep.instructions = instructions;
    let sweep_job = client.submit(&sweep).expect("submit sweep job");

    println!(
        "\nsubmitted job {rate_job} (mcf rate, 4 cores x 4 channels) and \
         job {sweep_job} (omnetpp x 3 configs); streaming both:\n"
    );

    // ---- Stream both jobs as their events interleave on the wire. ----
    let mut open = 2;
    let mut cells_seen = std::collections::HashMap::new();
    let mut frames_seen = std::collections::HashMap::new();
    while open > 0 {
        let event = client.next_event().expect("event stream");
        match &event {
            WireEvent::Queued { job, cells } => println!("  job {job}: queued ({cells} cells)"),
            WireEvent::Started { job } => println!("  job {job}: started"),
            WireEvent::Cell {
                job,
                index,
                total,
                benchmark,
                config,
                aggregate_ipc,
                ..
            } => {
                *cells_seen.entry(*job).or_insert(0u64) += 1;
                println!(
                    "  job {job}: cell {}/{total} {benchmark} x {config}: aggregate IPC {aggregate_ipc:.3}",
                    index + 1
                );
            }
            WireEvent::Metrics { job, counters } => {
                *frames_seen.entry(*job).or_insert(0u64) += 1;
                println!(
                    "  job {job}: live metrics frame ({} counters, {} cells completed so far)",
                    counters.len(),
                    counters.get("service.cell.completed").copied().unwrap_or(0)
                );
            }
            WireEvent::Finished {
                job,
                cells,
                instructions,
                cycles,
            } => {
                println!(
                    "  job {job}: finished ({cells} cells, {instructions} instrs, {cycles} cycles)"
                );
                open -= 1;
            }
            WireEvent::Cancelled { job, completed } => {
                println!("  job {job}: cancelled after {completed} cells");
                open -= 1;
            }
            WireEvent::Failed { job, error } => {
                println!("  job {job}: failed ({error})");
                open -= 1;
            }
        }
    }

    // ---- Every cell streamed one live metrics frame behind it. ----
    for (job, cells) in &cells_seen {
        let frames = frames_seen.get(job).copied().unwrap_or(0);
        assert!(
            frames >= *cells,
            "job {job}: {cells} cells but only {frames} live metrics frames"
        );
    }
    println!(
        "\nlive metrics: every cell was followed by a windowed counter frame \
         ({} frames across {} jobs)",
        frames_seen.values().sum::<u64>(),
        frames_seen.len()
    );

    // ---- Series endpoint: the rate job recorded a sim-time series. ----
    let series = client
        .series(rate_job)
        .expect("series command")
        .expect("the rate job ran with epoch_width set");
    assert!(
        series.row_total("dram.decisions_total") > 0,
        "the rate job's series attributes controller decisions over time"
    );
    println!(
        "series endpoint: job {rate_job} recorded {} rows x {} epochs of {} cycles",
        series.rows.len(),
        series.epochs(),
        series.epoch_width
    );

    // ---- Warm-cache proof: an identical spec regenerates nothing. ----
    let cold = client.cache_stats().expect("cache stats");
    let warm_job = client.submit(&sweep).expect("submit identical sweep again");
    let events = client.stream_job(warm_job).expect("stream warm job");
    assert!(
        matches!(events.last(), Some(WireEvent::Finished { .. })),
        "warm job finishes: {events:?}"
    );
    let warm = client.cache_stats().expect("cache stats");
    assert_eq!(
        warm.trace_generated + warm.trace_disk_hits,
        cold.trace_generated + cold.trace_disk_hits,
        "the identical-spec job must not regenerate or re-read any trace"
    );
    assert!(
        warm.trace_memory_hits > cold.trace_memory_hits,
        "the identical-spec job hits the warm in-process trace cache"
    );
    println!(
        "\nwarm-cache proof: job {warm_job} (same spec as {sweep_job}) generated 0 traces \
         ({} memory hits, {} disk hits, {} generated since server start)",
        warm.trace_memory_hits, warm.trace_disk_hits, warm.trace_generated
    );

    // ---- Metrics endpoint: the jobs above show up as counters. ----
    let metrics = client.metrics().expect("metrics command");
    let submitted = metrics.get("service.job.submitted").copied().unwrap_or(0);
    let completed = metrics.get("service.job.completed").copied().unwrap_or(0);
    let cells = metrics.get("service.cell.completed").copied().unwrap_or(0);
    assert!(submitted >= 3, "three jobs were submitted: {metrics:?}");
    assert!(completed >= 3, "three jobs finished: {metrics:?}");
    assert!(cells >= 5, "their cells all ran: {metrics:?}");
    println!(
        "\nmetrics endpoint: {submitted} jobs submitted, {completed} completed, \
         {cells} cells run"
    );

    // ---- Clean shutdown (the CI gate waits on the server's exit). ----
    client.shutdown_server().expect("shutdown command");
    if let Some(server) = local_server {
        server
            .join()
            .expect("server thread")
            .expect("clean serve exit");
    }
    println!("server shut down cleanly");
}
