//! Boot-time attestation walkthrough (Section III-F of the paper).
//!
//! Plays out the full life cycle: manufacturing (endorsement keys + CA
//! certificate), boot (authenticated key exchange, counter agreement,
//! memory clearing), normal operation, a cold-boot substitution attempt,
//! and a legitimate DIMM replacement.
//!
//! Run with: `cargo run --release --example attestation_boot`

use secddr::functional::attest::{
    host_ephemeral, host_verify, rank_respond, CertificateAuthority, RankIdentity,
};
use secddr::functional::dimm::DimmRank;
use secddr::functional::geometry;
use secddr::functional::processor::{EncryptionMode, SecDdrProcessor};

fn main() {
    println!("== SecDDR attestation & boot walkthrough ==\n");

    // --- Manufacturing time -------------------------------------------
    let ca = CertificateAuthority::new(2026);
    let identity = RankIdentity::manufacture(7, &ca);
    println!("[factory] endorsement keypair embedded in the rank's ECC chip");
    println!("[factory] CA issued certificate over EKp\n");

    // --- Boot: authenticated key exchange ------------------------------
    let host = host_ephemeral(0xB007);
    println!("[boot] processor sends ephemeral DH public key");
    let (response, rank_kt) = rank_respond(&identity, &host.public, 0xD1);
    println!("[boot] rank responds: ephemeral key + EKp + certificate + signature");
    let outcome = host_verify(&host, &response, &ca.public(), /* initial Ct */ 1_000)
        .expect("genuine DIMM attests successfully");
    println!("[boot] processor verified certificate chain and transcript signature");
    println!("[boot] both ends derived Kt; initial counter = 1000 shared in plaintext");

    // --- Channel becomes operational -----------------------------------
    let mut cpu = SecDdrProcessor::new(EncryptionMode::Xts, outcome.kt, outcome.initial_ct, 99);
    let mut rank = DimmRank::new(rank_kt, outcome.initial_ct);
    println!("[boot] processor clears memory (zero writes) — pre-boot state discarded\n");

    let payload = *b"enclave page: sealed against replay by the E-MAC channel.......!";
    let tx = cpu.begin_write(0x7000, &payload);
    assert_eq!(
        rank.accept_write(&tx),
        secddr::functional::dimm::WriteOutcome::Committed
    );
    let resp = rank.serve_read(geometry::decode(0x7000));
    let got = cpu.finish_read(0x7000, &resp).expect("verified");
    assert_eq!(got, payload);
    println!("[run] secure write + verified read: OK");
    println!(
        "[run] counters: cpu {:?} / rank {:?}\n",
        cpu.counter_state(),
        rank.counter_state()
    );

    // --- Cold-boot substitution attempt ---------------------------------
    let frozen = rank.snapshot();
    let tx = cpu.begin_write(0x7000, &[0xFF; 64]);
    rank.accept_write(&tx);
    rank.restore(frozen); // attacker swaps the frozen module back in
    let resp = rank.serve_read(geometry::decode(0x7000));
    match cpu.finish_read(0x7000, &resp) {
        Err(e) => println!("[attack] cold-boot substitution: DETECTED ({e})"),
        Ok(_) => unreachable!("stale counters cannot verify"),
    }

    // --- Legitimate replacement -----------------------------------------
    let ca2_identity = RankIdentity::manufacture(8, &ca);
    let host2 = host_ephemeral(0xB008);
    let (resp2, new_rank_kt) = rank_respond(&ca2_identity, &host2.public, 0xD2);
    let outcome2 = host_verify(&host2, &resp2, &ca.public(), 50_000).expect("new DIMM attests");
    rank.reattest(new_rank_kt, outcome2.initial_ct);
    let mut cpu2 = SecDdrProcessor::new(EncryptionMode::Xts, outcome2.kt, outcome2.initial_ct, 100);
    println!("\n[swap] legitimate replacement: re-attested, memory cleared");
    let tx = cpu2.begin_write(0x9000, &[0x11; 64]);
    rank.accept_write(&tx);
    let resp = rank.serve_read(geometry::decode(0x9000));
    assert!(cpu2.finish_read(0x9000, &resp).is_ok());
    println!("[swap] fresh channel operational — lifecycle complete.");
}
