//! Attack gauntlet: every attack scenario from Sections II-C and III of
//! the paper, executed against the functional SecDDR model, with the
//! detection outcome printed next to the paper's claim.
//!
//! Run with: `cargo run --release --example attack_gauntlet`

use secddr::functional::attacks::{
    AddressCorruptor, BusReplay, CommandConverter, DataTamperer, EmacTamperer, WriteDropper,
};
use secddr::functional::attest::{
    host_ephemeral, host_verify, rank_respond, CertificateAuthority, RankIdentity,
};
use secddr::functional::dimm::WriteOutcome;
use secddr::functional::{EncryptionMode, SecureChannel};

const LINE: u64 = 0x8_0000;

fn verdict(detected: bool) -> &'static str {
    if detected {
        "DETECTED  ✓"
    } else {
        "UNDETECTED  ✗"
    }
}

fn main() {
    println!("== SecDDR attack gauntlet ==");
    println!("(paper: Sections II-C, III-A, III-B, III-C, III-F)\n");

    // 1. Bus replay of a stale (data, E-MAC) tuple.
    {
        let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 1, BusReplay::new(0, 1));
        ch.write(LINE, &[1; 64]);
        let _ = ch.read(LINE);
        ch.write(LINE, &[2; 64]);
        let detected = ch.read(LINE).is_err();
        println!(
            "1. bus replay of stale (data, MAC):       {}",
            verdict(detected)
        );
    }

    // 2. Row-redirected write (Figure 3's stale-data attack).
    {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            2,
            AddressCorruptor::redirect_row(0, 0x100),
        );
        let outcome = ch.write(LINE, &[3; 64]);
        let detected = outcome == WriteOutcome::EwcrcRejected && ch.rank.ewcrc_alerts == 1;
        println!(
            "2. activate redirected to another row:    {}",
            verdict(detected)
        );
    }

    // 3. Column-redirected write.
    {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            3,
            AddressCorruptor::redirect_column(0, 0x4),
        );
        let detected = ch.write(LINE, &[4; 64]) == WriteOutcome::EwcrcRejected;
        println!(
            "3. write redirected to another column:    {}",
            verdict(detected)
        );
    }

    // 4. Dropped write.
    {
        let mut ch = SecureChannel::with_interposer(EncryptionMode::Xts, 4, WriteDropper::new(1));
        ch.write(LINE, &[5; 64]);
        let _ = ch.read(LINE);
        ch.write(LINE, &[6; 64]); // dropped
        let detected = ch.read(LINE).is_err() && ch.read(0x40).is_err();
        println!(
            "4. dropped write (all later reads fail):  {}",
            verdict(detected)
        );
    }

    // 5. Write converted to a read.
    {
        let mut ch =
            SecureChannel::with_interposer(EncryptionMode::Xts, 5, CommandConverter::new(0));
        ch.write(LINE, &[7; 64]);
        let detected = ch.read(LINE).is_err();
        println!(
            "5. write command converted to read:       {}",
            verdict(detected)
        );
    }

    // 6. Plain data / E-MAC bit flips on the bus.
    {
        let mut ch = SecureChannel::with_interposer(
            EncryptionMode::Xts,
            6,
            DataTamperer {
                byte: 5,
                mask: 0x80,
            },
        );
        ch.write(LINE, &[8; 64]);
        let d1 = ch.read(LINE).is_err();
        let mut ch2 =
            SecureChannel::with_interposer(EncryptionMode::Xts, 7, EmacTamperer { mask: 2 });
        ch2.write(LINE, &[9; 64]);
        let d2 = ch2.read(LINE).is_err();
        println!(
            "6. data / E-MAC bit flips on the bus:     {}",
            verdict(d1 && d2)
        );
    }

    // 7. DIMM substitution (cold-boot replay).
    {
        let mut ch = SecureChannel::new_attested(EncryptionMode::Xts, 8);
        ch.write(LINE, &[10; 64]);
        let frozen = ch.rank.snapshot();
        let _ = ch.read(LINE);
        ch.write(LINE, &[11; 64]);
        ch.rank.restore(frozen); // attacker swaps in the frozen DIMM
        let detected = ch.read(LINE).is_err();
        println!(
            "7. DIMM substitution / cold-boot replay:  {}",
            verdict(detected)
        );
    }

    // 8. Man-in-the-middle on the attestation key exchange.
    {
        let ca = CertificateAuthority::new(1);
        let identity = RankIdentity::manufacture(2, &ca);
        let host = host_ephemeral(3);
        let (mut resp, _) = rank_respond(&identity, &host.public, 4);
        resp.ephemeral_public = host_ephemeral(666).public; // Mallory
        let detected = host_verify(&host, &resp, &ca.public(), 0).is_err();
        println!(
            "8. MITM on attestation key exchange:      {}",
            verdict(detected)
        );
    }

    // 9. Counterfeit DIMM (endorsement key not certified by the CA).
    {
        let ca = CertificateAuthority::new(1);
        let rogue = CertificateAuthority::new(66);
        let identity = RankIdentity::manufacture(2, &rogue);
        let host = host_ephemeral(3);
        let (resp, _) = rank_respond(&identity, &host.public, 4);
        let detected = host_verify(&host, &resp, &ca.public(), 0).is_err();
        println!(
            "9. counterfeit DIMM (bad certificate):    {}",
            verdict(detected)
        );
    }

    println!("\nAll nine attack classes are detected, as the paper claims.");
}
