//! The fleet end to end: a dispatcher over two workers survives a
//! worker death mid-sweep, and an identical resubmission is served
//! entirely from the whole-result store without executing a cell.
//!
//! Two modes:
//!
//! * `SECDDR_DISPATCH_ADDR=host:port` — connect to an already-running
//!   `secddr-dispatch` (what CI does: it launches 2 `secddr-serve`
//!   workers and the dispatcher on loopback, passes one worker's PID in
//!   `SECDDR_KILL_PID` for this example to SIGKILL mid-run and the
//!   other's address in `SECDDR_WORKER1_ADDR` for a clean shutdown at
//!   the end, then gates on both clean-exit lines);
//! * unset — spin up two in-process workers and a dispatcher on
//!   ephemeral ports, simulating the mid-run crash by severing one
//!   worker link, so `cargo run --release --example fleet` works
//!   stand-alone.
//!
//! Run with: `cargo run --release --example fleet`
//! (`SECDDR_INSTRS` overrides the instruction budget.)

use secddr::core::config::SecurityConfig;
use secddr::fleet::{Dispatcher, DispatcherConfig, FleetServer};
use secddr::service::{ExperimentServer, ExperimentService, JobSpec, ServiceClient, WireEvent};
use std::sync::Arc;

/// How the example crashes the second worker mid-run.
enum Killer {
    /// SIGKILL a real worker process (CI mode).
    Pid(String),
    /// Sever the dispatcher→worker link (stand-alone mode).
    Sever(Arc<Dispatcher>, usize),
}

impl Killer {
    fn kill(&self) {
        match self {
            Killer::Pid(pid) => {
                println!("  killing worker 2 (pid {pid}) mid-run");
                let _ = std::process::Command::new("kill")
                    .args(["-9", pid])
                    .status();
            }
            Killer::Sever(dispatcher, idx) => {
                println!(
                    "  severing worker {} link mid-run (simulated crash)",
                    idx + 1
                );
                dispatcher.sever_worker(*idx);
            }
        }
    }
}

fn stream_sweep(client: &mut ServiceClient, job: u64, kill: Option<&Killer>) -> u64 {
    let mut killed = kill.is_none();
    let mut cells = 0u64;
    loop {
        let event = client.next_event().expect("event stream");
        match &event {
            WireEvent::Queued { job: j, cells } if *j == job => {
                println!("  job {job}: queued ({cells} cells)");
            }
            WireEvent::Started { job: j } if *j == job => println!("  job {job}: started"),
            WireEvent::Cell {
                job: j,
                index,
                total,
                benchmark,
                config,
                aggregate_ipc,
                ..
            } if *j == job => {
                cells += 1;
                println!(
                    "  job {job}: cell {}/{total} {benchmark} x {config}: IPC {aggregate_ipc:.3}",
                    index + 1
                );
                if !killed {
                    killed = true;
                    if let Some(killer) = kill {
                        killer.kill();
                    }
                }
            }
            WireEvent::Finished {
                job: j,
                cells: total,
                instructions,
                cycles,
            } if *j == job => {
                println!(
                    "  job {job}: finished ({total} cells, {instructions} instrs, {cycles} cycles)"
                );
                assert_eq!(cells, *total, "every cell was streamed before finished");
                return cells;
            }
            WireEvent::Cancelled { job: j, .. } | WireEvent::Failed { job: j, .. } if *j == job => {
                panic!("sweep did not finish: {event:?}");
            }
            _ => {}
        }
    }
}

fn fleet_counter(client: &mut ServiceClient, name: &str) -> u64 {
    client
        .metrics()
        .expect("metrics command")
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);

    // ---- Reach a dispatcher: external (CI) or in-process. ----
    let external = std::env::var("SECDDR_DISPATCH_ADDR").ok();
    let mut local_workers: Vec<(String, std::thread::JoinHandle<std::io::Result<()>>)> = Vec::new();
    let (addr, killer, worker1_addr, local_server) = match &external {
        Some(addr) => {
            println!("connecting to external secddr-dispatch at {addr}");
            let pid = std::env::var("SECDDR_KILL_PID").expect("SECDDR_KILL_PID with external");
            let worker1 =
                std::env::var("SECDDR_WORKER1_ADDR").expect("SECDDR_WORKER1_ADDR with external");
            (addr.clone(), Killer::Pid(pid), worker1, None)
        }
        None => {
            for i in 0..2 {
                let server =
                    ExperimentServer::bind("127.0.0.1:0", ExperimentService::with_threads(1))
                        .expect("bind a worker");
                let waddr = server.local_addr().expect("bound address").to_string();
                println!("started in-process worker {} on {waddr}", i + 1);
                local_workers.push((waddr, std::thread::spawn(move || server.serve())));
            }
            let server = FleetServer::bind(
                "127.0.0.1:0",
                Dispatcher::start(DispatcherConfig {
                    workers: local_workers.iter().map(|(a, _)| a.clone()).collect(),
                    ..DispatcherConfig::default()
                })
                .expect("start dispatcher"),
            )
            .expect("bind dispatcher");
            let addr = server.local_addr().expect("bound address").to_string();
            let dispatcher = server.dispatcher();
            println!("started in-process dispatcher on {addr}");
            (
                addr,
                Killer::Sever(dispatcher, 1),
                local_workers[0].0.clone(),
                Some(std::thread::spawn(move || server.serve())),
            )
        }
    };
    let mut client = ServiceClient::connect(&addr).expect("connect to the dispatcher");
    client.ping().expect("dispatcher answers ping");

    // ---- The sweep: one benchmark across six security configs. ----
    let mut sweep = JobSpec::bench("mcf");
    sweep.instructions = instructions;
    sweep.configs = vec![
        SecurityConfig::tdx_baseline(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::secddr_xts(),
        SecurityConfig::tree_64ary(),
        SecurityConfig::encrypt_only_ctr(),
        SecurityConfig::invisimem_realistic(secddr::core::config::EncMode::Ctr),
    ];

    // ---- Round 1: run it, crashing worker 2 after the first cell. ----
    let job = client.submit(&sweep).expect("submit sweep");
    println!("\nround 1: sweep as job {job}, with a mid-run worker crash:\n");
    let cells = stream_sweep(&mut client, job, Some(&killer));

    // The dispatcher noticed the death and requeued the dead worker's
    // cells (the job finished, so the requeue demonstrably worked).
    let mut deaths = 0;
    for _ in 0..100 {
        deaths = fleet_counter(&mut client, "fleet.worker.deaths");
        if deaths > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(deaths >= 1, "the worker death was detected and counted");
    let requeued = fleet_counter(&mut client, "fleet.cells.requeued");
    println!(
        "\nworker death survived: {deaths} death(s) detected, {requeued} cell(s) requeued, \
         all {cells} cells delivered"
    );

    // ---- Round 2: the identical sweep is pure result-store traffic. ----
    let hits_before = fleet_counter(&mut client, "fleet.result_cache.hits");
    let dispatched_before = fleet_counter(&mut client, "fleet.cells.dispatched");
    let warm_job = client.submit(&sweep).expect("resubmit identical sweep");
    println!("\nround 2: identical sweep as job {warm_job}, served from the result store:\n");
    let warm_cells = stream_sweep(&mut client, warm_job, None);
    assert_eq!(warm_cells, cells);
    let hits = fleet_counter(&mut client, "fleet.result_cache.hits") - hits_before;
    let dispatched = fleet_counter(&mut client, "fleet.cells.dispatched") - dispatched_before;
    assert!(hits > 0, "fleet.result_cache.hits must move");
    assert_eq!(hits, cells, "every cell came from the result store");
    assert_eq!(dispatched, 0, "zero cells executed on any worker");
    println!(
        "\nmemoization proof: {hits} result-store hits, {dispatched} cells dispatched \
         to workers"
    );

    // ---- Satellite check: the surviving worker exposes its pool
    // gauges through the metrics endpoint. ----
    let mut worker_client =
        ServiceClient::connect(&worker1_addr).expect("connect to surviving worker");
    let gauges = worker_client.gauges().expect("worker gauges");
    assert!(
        gauges.contains_key("service.pool.queue_depth")
            && gauges.contains_key("service.pool.inflight"),
        "pool gauges are published: {gauges:?}"
    );
    println!(
        "worker pool gauges: queue_depth={} inflight={}",
        gauges["service.pool.queue_depth"], gauges["service.pool.inflight"]
    );

    // ---- Clean shutdowns (the CI gate waits on both exits). ----
    client.shutdown_server().expect("dispatcher shutdown");
    if let Some(server) = local_server {
        server
            .join()
            .expect("dispatcher thread")
            .expect("clean dispatcher exit");
    }
    println!("\ndispatcher shut down cleanly");
    worker_client.shutdown_server().expect("worker 1 shutdown");
    if let Some((_, serve)) = local_workers.into_iter().next() {
        serve
            .join()
            .expect("worker 1 thread")
            .expect("clean worker exit");
    }
    println!("worker 1 shut down cleanly");
}
