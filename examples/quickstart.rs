//! Quickstart: the SecDDR protocol end to end in a few lines.
//!
//! Builds an attested processor↔DIMM channel, writes and reads secure
//! memory, shows that a bus replay attack is detected, and runs one small
//! performance comparison (SecDDR+XTS vs a 64-ary integrity tree).
//!
//! Run with: `cargo run --release --example quickstart`

use secddr::functional::attacks::BusReplay;
use secddr::functional::{EncryptionMode, SecureChannel};
use secddr_core::config::SecurityConfig;
use secddr_core::system::{run_benchmark, RunParams};
use workloads::Benchmark;

fn main() {
    // --- 1. Functional protocol: a secure channel that just works. -----
    println!("== SecDDR quickstart ==\n");
    let mut channel = SecureChannel::new_attested(EncryptionMode::Xts, 42);
    let secret = *b"attested memory with replay-protected DDR interface bus!IntactOK";
    channel.write(0x1000, &secret);
    let read_back = channel.read(0x1000).expect("honest channel verifies");
    assert_eq!(read_back, secret);
    println!("secure write/read round-trip: OK");

    // --- 2. The headline security property: replays are detected. ------
    let mut attacked = SecureChannel::with_interposer(
        EncryptionMode::Xts,
        42,
        BusReplay::new(0, 1), // capture the first read, replay on the second
    );
    attacked.write(0x2000, &[1u8; 64]);
    let first = attacked.read(0x2000);
    attacked.write(0x2000, &[2u8; 64]);
    let replayed = attacked.read(0x2000);
    println!(
        "bus replay attack: first read {:?}, replayed read {}",
        first.map(|d| d[0]),
        match replayed {
            Ok(_) => "UNDETECTED (bug!)".to_string(),
            Err(e) => format!("DETECTED ({e})"),
        }
    );
    assert!(replayed.is_err());

    // --- 3. The headline performance property: no tree walk. -----------
    println!("\nrunning a small performance comparison on omnetpp...");
    let params = RunParams {
        instructions: 150_000,
        seed: 7,
    };
    let bench = Benchmark::by_name("omnetpp").expect("known benchmark");
    let tdx = run_benchmark(&bench, &SecurityConfig::tdx_baseline(), &params);
    let tree = run_benchmark(&bench, &SecurityConfig::tree_64ary(), &params);
    let secddr = run_benchmark(&bench, &SecurityConfig::secddr_xts(), &params);
    println!(
        "  64-ary integrity tree: {:.3} (normalized IPC)",
        tree.ipc() / tdx.ipc()
    );
    println!(
        "  SecDDR+XTS:            {:.3} (normalized IPC)",
        secddr.ipc() / tdx.ipc()
    );
    println!("\nSecDDR provides replay protection at (near) encrypt-only cost.");
}
