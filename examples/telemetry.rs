//! Cross-layer telemetry in one run: a 4-core rate job over 4 SecDDR
//! channels with the span ring buffer and sim-time series live, then
//!
//! * the merged [`TelemetrySnapshot`] — controller decision causes,
//!   core wake reasons, and trace-cache counters under one dotted
//!   namespace — printed in deterministic order, with the partitions
//!   reconciled (`dram.decision.* == dram.decisions_total`,
//!   `multicore.wake.* == multicore.wakes_total`);
//! * the sim-time windowed series — the same attribution counters
//!   bucketed into fixed sim-cycle epochs, reconciled against the
//!   aggregate and exported as `series.csv` (wide form: one row per
//!   counter, one column per epoch);
//! * the per-shard advance timeline plus per-epoch counter events
//!   (`"ph":"C"`) exported as `trace.json`, a Chrome trace-event
//!   document `chrome://tracing` or <https://ui.perfetto.dev> loads
//!   directly — the series rows render as stacked area charts on the
//!   same timeline.
//!
//! Run with: `cargo run --release --example telemetry`
//! (`SECDDR_INSTRS` overrides the instruction budget,
//! `SECDDR_TRACE_OUT` the timeline path, `SECDDR_CSV_OUT` the CSV
//! path.)

use secddr::core::config::SecurityConfig;
use secddr::core::metadata::DATA_SPAN;
use secddr::cpu::CpuConfig;
use secddr::telemetry::chrome_trace;
use secddr::workloads::Benchmark;
use secddr::{CoreTrace, Interleave, MultiCoreSystem, Registry, ShardedEngine};

const CORES: usize = 4;
const CHANNELS: usize = 4;

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000);
    let out_path = std::env::var("SECDDR_TRACE_OUT").unwrap_or_else(|_| "trace.json".to_string());
    let csv_path = std::env::var("SECDDR_CSV_OUT").unwrap_or_else(|_| "series.csv".to_string());
    // Epoch width in CPU cycles: scaled so the run rolls a few dozen
    // epochs, floored so tiny budgets still produce several.
    let epoch_width = (instructions * 2).max(2_048);

    // ---- A traced 4-core rate job over 4 channels. ----
    let cfg = SecurityConfig::secddr_ctr();
    let cpu_cfg = CpuConfig::default();
    let mut engine = ShardedEngine::new(cfg, cpu_cfg.clock_mhz, Interleave::xor(CHANNELS));
    engine.enable_trace(65_536);
    engine.enable_series(epoch_width);
    let mut sys = MultiCoreSystem::new(CORES, cpu_cfg, engine);
    sys.enable_series(epoch_width);

    let bench = Benchmark::by_name("mcf").expect("known benchmark");
    let trace = bench.generate_shared(instructions, 0xD5);
    println!(
        "== telemetry: {CORES} x {} ({instructions} instructions) over {CHANNELS} channels ==\n",
        bench.name()
    );
    let result = sys.run(CoreTrace::rate(&trace, DATA_SPAN, CORES));
    println!(
        "aggregate ipc {:.3} over {} cycles\n",
        result.aggregate_ipc(),
        result.merged().cycles
    );

    // ---- One merged snapshot across every layer. ----
    let mut snap = sys.telemetry_snapshot(); // wake reasons + core steps
    sys.backend_mut().dram_telemetry().render_into(&mut snap); // decision causes
    snap.merge(&Registry::global().snapshot()); // trace cache + any service counters
    print!("{snap}");

    // The cause and reason buckets partition their totals exactly.
    assert_eq!(
        snap.counter_prefix_sum("dram.decision."),
        snap.counter("dram.decisions_total"),
        "decision causes must partition the executed controller cycles"
    );
    assert_eq!(
        snap.counter_prefix_sum("multicore.wake."),
        snap.counter("multicore.wakes_total"),
        "wake reasons must partition the core wakes"
    );
    println!("\n(cause and wake partitions reconcile exactly)");

    // ---- The sim-time series: reconcile, then export as CSV. ----
    let mut series = sys
        .backend_mut()
        .series_snapshot()
        .expect("series was enabled on the backend");
    series.merge(&sys.series_snapshot().expect("series was enabled"));
    assert!(
        series.reconciles_with(&snap),
        "per-epoch series sums must reconcile with the aggregate snapshot"
    );
    std::fs::write(&csv_path, series.to_csv()).expect("write the series CSV");
    println!(
        "wrote {csv_path}: {} rows x {} epochs of {} cycles (sums reconcile with the aggregate)",
        series.rows.len(),
        series.epochs(),
        series.epoch_width
    );

    // ---- Export timeline + per-epoch counters for chrome://tracing. ----
    let sink = sys.backend_mut().take_trace().expect("trace was enabled");
    if sink.dropped() > 0 {
        eprintln!(
            "warning: span ring evicted {} spans — raise enable_trace({}) \
             to keep the full timeline",
            sink.dropped(),
            sink.capacity()
        );
    }
    let labels: Vec<String> = (0..CHANNELS).map(|s| format!("shard {s}")).collect();
    #[allow(clippy::cast_possible_truncation)]
    let tracks: Vec<(u32, &str)> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| (s as u32, l.as_str()))
        .collect();
    let json = chrome_trace::render_with_counters(&sink, &tracks, &series);
    std::fs::write(&out_path, &json).expect("write the timeline");
    println!(
        "wrote {out_path}: {} spans ({} dropped by the ring) + per-epoch \
         counter events — load it in chrome://tracing or ui.perfetto.dev",
        sink.len(),
        sink.dropped()
    );
}
