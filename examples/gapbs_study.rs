//! Graph-analytics case study: why integrity trees hurt irregular
//! workloads and SecDDR does not.
//!
//! Runs the six GAPBS kernels under four configurations and reports
//! normalized IPC together with the metadata traffic that explains it
//! (counter/tree fetches per kilo-instruction, metadata cache miss rate).
//!
//! Run with: `cargo run --release --example gapbs_study`
//! (set `SECDDR_INSTRS` to change the per-kernel instruction budget)

use secddr_core::config::SecurityConfig;
use secddr_core::system::{run_benchmark, RunParams, RunResult};
use workloads::{Benchmark, Suite};

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let params = RunParams {
        instructions,
        seed: 0xD5,
    };

    let kernels: Vec<Benchmark> = Benchmark::all()
        .into_iter()
        .filter(|b| b.suite() == Suite::Gapbs)
        .collect();
    let configs = [
        SecurityConfig::tree_64ary(),
        SecurityConfig::secddr_ctr(),
        SecurityConfig::secddr_xts(),
    ];

    println!("== GAPBS under secure memory ({instructions} instructions per kernel) ==\n");
    println!(
        "{:<6} {:>22} {:>12} {:>12} {:>14} {:>12}",
        "kernel", "config", "norm. IPC", "LLC MPKI", "md fetch/ki", "md miss%"
    );
    for bench in &kernels {
        let tdx = run_benchmark(bench, &SecurityConfig::tdx_baseline(), &params);
        for cfg in &configs {
            let r: RunResult = run_benchmark(bench, cfg, &params);
            let md_per_ki = (r.engine.leaf_fetches + r.engine.tree_fetches) as f64 * 1000.0
                / r.sim.instructions as f64;
            println!(
                "{:<6} {:>22} {:>12.3} {:>12.1} {:>14.2} {:>11.1}%",
                bench.name(),
                r.config,
                r.ipc() / tdx.ipc(),
                r.llc_mpki(),
                md_per_ki,
                r.metadata_miss_rate() * 100.0
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper Figure 6): pr/bc/sssp/cc suffer most under the tree\n\
         because every scattered property access walks a different branch; tc's\n\
         sequential intersections keep the metadata cache warm; SecDDR+XTS removes\n\
         metadata traffic entirely."
    );
}
