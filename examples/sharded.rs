//! Sharded multi-channel memory in a few lines: the same CPU front-end,
//! N interleaved SecDDR channels below it.
//!
//! Runs one memory-intensive benchmark through `CpuSystem` over a bare
//! `SecurityEngine`, then over `ShardedEngine` at N = 1 (asserted
//! bit-identical to the bare engine), 2, 4, and 8 channels, and prints
//! how the per-shard load balances and what sharding buys in simulated
//! IPC. Per-shard channel statistics are aggregated with
//! `ChannelStats::merge` — no ad-hoc summing.
//!
//! Run with: `cargo run --release --example sharded`
//! (`SECDDR_INSTRS` overrides the instruction budget.)

use secddr::channels::{Interleave, ShardedEngine};
use secddr::core::config::SecurityConfig;
use secddr::core::engine::SecurityEngine;
use secddr::cpu::{CpuConfig, CpuSystem};
use secddr::ChannelStats;
use workloads::Benchmark;

fn main() {
    let instructions = std::env::var("SECDDR_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let bench = Benchmark::by_name("omnetpp").expect("known benchmark");
    let trace: Vec<_> = bench.generate(instructions, 0xD5);
    let cfg = SecurityConfig::secddr_ctr();
    let cpu_cfg = CpuConfig::default();

    println!("== sharded multi-channel memory ==\n");
    println!(
        "workload: {} ({} instructions), config: {}\n",
        bench.name(),
        instructions,
        cfg.label()
    );

    // Baseline: the bare single-channel engine.
    let mut bare = CpuSystem::new(cpu_cfg, SecurityEngine::new(cfg, cpu_cfg.clock_mhz));
    let bare_sim = bare.run(trace.iter().copied());
    let bare_stats = bare.backend().stats();
    let bare_dram = bare.backend().dram_stats();
    println!(
        "bare engine        ipc {:.3}  dram reads {:>6}  avg read latency {:>6.1} mem cycles",
        bare_sim.ipc(),
        bare_dram.reads,
        bare_dram.avg_read_latency()
    );

    for n in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(cfg, cpu_cfg.clock_mhz, Interleave::xor(n));
        let mut sys = CpuSystem::new(cpu_cfg, engine);
        let sim = sys.run(trace.iter().copied());

        // Aggregate per-channel statistics with merge() — the per-shard
        // histograms and counters sum into one multi-channel view.
        let mut merged = ChannelStats::default();
        sys.backend_mut().sync();
        for s in 0..n {
            merged.merge(&sys.backend().shard(s).dram_stats());
        }
        let per_shard: Vec<u64> = (0..n)
            .map(|s| sys.backend().shard(s).dram_stats().reads)
            .collect();

        println!(
            "{n} channel{}         ipc {:.3}  dram reads {:>6}  avg read latency {:>6.1} mem cycles  per-shard reads {per_shard:?}",
            if n == 1 { " " } else { "s" },
            sim.ipc(),
            merged.reads,
            merged.avg_read_latency(),
        );

        if n == 1 {
            // One shard is the bare engine, observationally: same core
            // behaviour, same engine traffic, same channel schedule.
            assert_eq!(sim, bare_sim, "N=1 SimResult must match the bare engine");
            assert_eq!(sys.backend_mut().stats(), bare_stats);
            assert_eq!(sys.backend_mut().dram_stats(), bare_dram);
            println!("                   (asserted bit-identical to the bare engine)");
        }
    }

    println!(
        "\nEach shard is a full SecurityEngine + DDR4 channel; the XOR line\n\
         interleave splits the physical line space densely across them, and\n\
         the top-level advance steps only the shards whose next-event bound\n\
         is due — idle channels cost nothing."
    );
}
